"""Deeper tests of negative-sampling behaviour and the trainer's use of it."""

import numpy as np
import scipy.sparse as sp

from repro.core import CoANE, CoANEConfig, ContextualNegativeSampler
from repro.core.negative_sampling import _context_membership


class TestMembershipMatrix:
    def test_diagonal_always_excluded(self):
        D = sp.csr_matrix((4, 4))
        mask = _context_membership(D)
        np.testing.assert_array_equal(mask.diagonal(), np.ones(4))

    def test_context_and_adjacency_union(self):
        D = sp.csr_matrix(np.array([[0, 1.0, 0], [0, 0, 0], [0, 0, 0]]))
        adjacency = sp.csr_matrix(np.array([[0, 0, 1.0], [0, 0, 0], [1.0, 0, 0]]))
        mask = np.asarray(_context_membership(D, adjacency).todense())
        assert mask[0, 1] == 1  # from D
        assert mask[0, 2] == 1  # from adjacency
        assert mask[1, 2] == 0

    def test_values_capped_at_one(self):
        D = sp.csr_matrix(np.array([[0, 5.0], [5.0, 0]]))
        mask = _context_membership(D, D)
        assert mask.data.max() == 1.0


class TestPreSamplingPool:
    def test_pool_respects_distribution(self):
        D = sp.csr_matrix((6, 6))
        counts = np.array([0.0, 0, 0, 0, 1, 9])
        sampler = ContextualNegativeSampler(D, counts, num_negative=1, mode="pre",
                                            pool_size=5000, seed=0)
        pool_fraction = (sampler._pool == 5).mean()
        assert 0.8 < pool_fraction < 1.0

    def test_repeated_queries_consistent_pool(self):
        D = sp.csr_matrix((5, 5))
        sampler = ContextualNegativeSampler(D, np.ones(5), num_negative=2,
                                            mode="pre", seed=0)
        first = sampler._pool.copy()
        sampler.sample(np.arange(5))
        np.testing.assert_array_equal(sampler._pool, first)  # pool is offline/fixed


class TestTrainerNegativeCache:
    def test_full_batch_negatives_fixed_across_epochs(self, tiny_graph):
        model = CoANE(CoANEConfig(embedding_dim=8, epochs=3, walk_length=10,
                                  decoder_hidden=8, seed=0, negative_strength=0.1))
        model.fit(tiny_graph)
        assert model._negative_cache is not None
        assert model._negative_cache.shape[1] == model.config.num_negative

    def test_cache_reset_between_fits(self, tiny_graph):
        model = CoANE(CoANEConfig(embedding_dim=8, epochs=2, walk_length=10,
                                  decoder_hidden=8, seed=0))
        model.fit(tiny_graph)
        first = model._negative_cache
        model.fit(tiny_graph)
        # A fresh fit rebuilds the cache object (values identical by seeding).
        assert model._negative_cache is not first

    def test_sampling_mode_follows_density(self, tiny_graph, circle_graph):
        sparse_cfg = CoANEConfig(sampling="auto")
        assert sparse_cfg.resolve_sampling(tiny_graph.density) == "pre" \
            if tiny_graph.density >= 0.005 else "batch"
        dense_mode = sparse_cfg.resolve_sampling(circle_graph.density)
        assert dense_mode in ("pre", "batch")
