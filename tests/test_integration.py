"""Cross-module integration tests: the full paper pipeline on small data."""

import numpy as np
import pytest

from repro.core import CoANE, CoANEConfig
from repro.eval import (
    evaluate_classification,
    evaluate_clustering,
    evaluate_link_prediction,
)
from repro.baselines import make_method
from repro.graph import load_dataset


def _coane_config(**overrides):
    base = dict(embedding_dim=32, epochs=12, walk_length=30, decoder_hidden=32, seed=0)
    base.update(overrides)
    return CoANEConfig(**base)


class TestFullPipeline:
    def test_classification_pipeline(self, small_graph):
        Z = CoANE(_coane_config()).fit_transform(small_graph)
        results = evaluate_classification(Z, small_graph.labels,
                                          train_ratios=(0.2, 0.5), num_repeats=2, seed=0)
        assert set(results) == {0.2, 0.5}
        for scores in results.values():
            assert 0.0 <= scores["macro"] <= 1.0
            assert 0.0 <= scores["micro"] <= 1.0
        # CoANE on a homophilous attributed graph should do far better than chance.
        assert results[0.5]["micro"] > 0.5

    def test_clustering_pipeline(self, small_graph):
        Z = CoANE(_coane_config()).fit_transform(small_graph)
        nmi = evaluate_clustering(Z, small_graph.labels, num_repeats=2, seed=0)
        assert nmi > 0.1

    def test_link_prediction_pipeline(self, small_graph):
        auc = evaluate_link_prediction(
            lambda g: CoANE(_coane_config()).fit_transform(g), small_graph, seed=0)
        assert auc["test"] > 0.6

    def test_coane_beats_structure_only_on_attributed_graph(self, small_graph):
        coane = CoANE(_coane_config(epochs=20)).fit_transform(small_graph)
        line = make_method("line", embedding_dim=32, seed=0).fit_transform(small_graph)
        coane_nmi = evaluate_clustering(coane, small_graph.labels, num_repeats=2, seed=0)
        line_nmi = evaluate_clustering(line, small_graph.labels, num_repeats=2, seed=0)
        assert coane_nmi > line_nmi

    def test_dataset_to_embedding_roundtrip(self):
        graph = load_dataset("webkb-cornell", seed=0, scale=0.5)
        Z = CoANE(_coane_config(epochs=6)).fit_transform(graph)
        assert Z.shape[0] == graph.num_nodes
        assert np.isfinite(Z).all()

    def test_validation_phase_available(self, small_graph):
        result = evaluate_link_prediction(
            lambda g: CoANE(_coane_config(epochs=4)).fit_transform(g),
            small_graph, seed=0, phases=("val", "test"))
        assert set(result) == {"val", "test"}


class TestAblationOrdering:
    """Fig. 6c's qualitative claim on a small graph: the full objective is not
    worse than removing the attribute signal entirely."""

    def test_attributes_help(self, small_graph):
        full = CoANE(_coane_config(epochs=15)).fit_transform(small_graph)
        without = CoANE(_coane_config(epochs=15, use_attribute_input=False,
                                      gamma=0.0)).fit_transform(small_graph)
        full_nmi = evaluate_clustering(full, small_graph.labels, num_repeats=2, seed=0)
        without_nmi = evaluate_clustering(without, small_graph.labels, num_repeats=2, seed=0)
        assert full_nmi >= without_nmi - 0.05

    def test_positive_term_essential_for_structure(self, small_graph):
        full = CoANE(_coane_config(epochs=15)).fit(small_graph)
        ablated = CoANE(_coane_config(epochs=15, positive_mode="off")).fit(small_graph)
        assert any(h["positive"] > 0 for h in full.history_)
        assert all(h["positive"] == 0 for h in ablated.history_)


class TestReproducibility:
    def test_same_seed_same_scores(self, small_graph):
        def run():
            Z = CoANE(_coane_config(epochs=5)).fit_transform(small_graph)
            return evaluate_clustering(Z, small_graph.labels, num_repeats=1, seed=0)
        assert run() == pytest.approx(run())

    def test_different_seeds_different_embeddings(self, small_graph):
        a = CoANE(_coane_config(epochs=3, seed=0)).fit_transform(small_graph)
        b = CoANE(_coane_config(epochs=3, seed=1)).fit_transform(small_graph)
        assert np.abs(a - b).max() > 1e-9
