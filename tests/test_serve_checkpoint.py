"""Checkpoint round-trips: weights, config, fingerprint guard."""

import numpy as np
import pytest

from repro.core import CoANE, CoANEConfig
from repro.core.model import CoANEModel
from repro.graph import citation_graph
from repro.nn import no_grad
from repro.serve import Checkpoint, CheckpointMismatchError
from repro.utils.persistence import (
    graph_fingerprint,
    load_checkpoint,
    normalized_config,
    save_checkpoint,
)
from repro.walks.contexts import attribute_context_matrices


@pytest.fixture(scope="module")
def fitted(tiny_graph):
    estimator = CoANE(CoANEConfig(embedding_dim=8, epochs=4, seed=0))
    estimator.fit(tiny_graph)
    return estimator


class TestStateDict:
    def test_roundtrip_identical_parameters(self):
        model = CoANEModel(num_attributes=6, embedding_dim=4, context_size=3,
                           decoder_hidden=5, seed=0)
        rebuilt = CoANEModel.from_spec(model.spec(), seed=123)
        rebuilt.load_state_dict(model.state_dict())
        for (name, left), (name2, right) in zip(model.named_parameters(),
                                                rebuilt.named_parameters()):
            assert name == name2
            np.testing.assert_array_equal(left.data, right.data)

    def test_names_cover_all_parameters(self):
        model = CoANEModel(num_attributes=6, embedding_dim=4, context_size=3, seed=0)
        assert len(model.named_parameters()) == len(model.parameters())

    def test_strict_rejects_missing_and_unexpected(self):
        model = CoANEModel(num_attributes=6, embedding_dim=4, context_size=3, seed=0)
        state = model.state_dict()
        state.pop("encoder.weight")
        with pytest.raises(ValueError, match="missing"):
            model.load_state_dict(state)
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(ValueError, match="unexpected"):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = CoANEModel(num_attributes=6, embedding_dim=4, context_size=3, seed=0)
        state = model.state_dict()
        state["encoder.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)

    def test_fc_extractor_spec_roundtrip(self):
        model = CoANEModel(num_attributes=6, embedding_dim=4, context_size=3,
                           extractor="fc", seed=0)
        rebuilt = CoANEModel.from_spec(model.spec(), seed=9)
        rebuilt.load_state_dict(model.state_dict())
        assert rebuilt.extractor == "fc"


class TestNormalizedConfig:
    def test_reconstructs_equivalent_config(self):
        config = CoANEConfig(embedding_dim=32, epochs=7, negative_mode="uniform")
        snapshot = normalized_config(config)
        rebuilt = CoANEConfig(**snapshot).validate()
        assert vars(rebuilt) == {**vars(config), "history_hooks": []}

    def test_drops_history_hooks(self):
        config = CoANEConfig()
        config.history_hooks.append(lambda e, z: None)
        assert "history_hooks" not in normalized_config(config)


class TestGraphFingerprint:
    def test_deterministic(self, tiny_graph):
        assert (graph_fingerprint(tiny_graph)
                == graph_fingerprint(tiny_graph))

    def test_sensitive_to_edges_attributes_labels(self, tiny_graph):
        base = graph_fingerprint(tiny_graph)
        edited = citation_graph(num_nodes=40, num_classes=2, num_attributes=20,
                                avg_degree=3.0, homophily=0.85, seed=4)
        assert graph_fingerprint(edited) != base
        from repro.graph import AttributedGraph

        bumped = AttributedGraph(tiny_graph.adjacency,
                                 tiny_graph.attributes + 1e-9,
                                 tiny_graph.labels)
        assert graph_fingerprint(bumped) != base


class TestCheckpointRoundtrip:
    def test_save_load_preserves_everything(self, fitted, tiny_graph, tmp_path):
        checkpoint = Checkpoint.from_estimator(fitted, tiny_graph)
        path = str(tmp_path / "run.ckpt.npz")
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        np.testing.assert_array_equal(loaded.embeddings, fitted.embeddings_)
        assert loaded.config == checkpoint.config
        assert loaded.model_spec == checkpoint.model_spec
        assert loaded.fingerprint == checkpoint.fingerprint
        assert loaded.info["num_nodes"] == tiny_graph.num_nodes
        for name, value in checkpoint.state.items():
            np.testing.assert_array_equal(loaded.state[name], value)

    def test_rebuilt_model_reproduces_training_embeddings(
            self, fitted, tiny_graph, tmp_path):
        """The frozen network applied to the training context corpus must
        reproduce the persisted embedding matrix exactly."""
        path = str(tmp_path / "run.ckpt.npz")
        Checkpoint.from_estimator(fitted, tiny_graph).save(path)
        loaded = Checkpoint.load(path)
        model = loaded.build_model()
        flat = attribute_context_matrices(fitted.context_set_,
                                          tiny_graph.attributes)
        with no_grad():
            rebuilt = model.embed(flat, fitted.context_set_.midst,
                                  tiny_graph.num_nodes).data
        np.testing.assert_allclose(rebuilt, loaded.embeddings, atol=1e-12)

    def test_fingerprint_guard(self, fitted, tiny_graph):
        checkpoint = Checkpoint.from_estimator(fitted, tiny_graph)
        other = citation_graph(num_nodes=40, num_classes=2, num_attributes=20,
                               avg_degree=3.0, homophily=0.85, seed=11)
        assert checkpoint.matches(tiny_graph)
        assert not checkpoint.matches(other)
        with pytest.raises(CheckpointMismatchError):
            checkpoint.verify(other)
        assert checkpoint.verify(tiny_graph) is checkpoint

    def test_unfitted_estimator_rejected(self, tiny_graph):
        with pytest.raises(RuntimeError):
            Checkpoint.from_estimator(CoANE(CoANEConfig()), tiny_graph)

    def test_foreign_archive_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_future_format_rejected(self, tmp_path):
        path = str(tmp_path / "future.npz")
        save_checkpoint(path, {}, np.zeros((2, 2)), {}, "abc")
        import numpy as _np

        data = dict(_np.load(path, allow_pickle=False))
        data["format_version"] = _np.int64(99)
        _np.savez(path, **data)
        with pytest.raises(ValueError, match="newer"):
            load_checkpoint(path)

    def test_save_normalises_suffixless_path(self, fitted, tiny_graph, tmp_path):
        """numpy appends .npz to suffix-less paths; save() must return the
        path that actually exists."""
        checkpoint = Checkpoint.from_estimator(fitted, tiny_graph)
        written = checkpoint.save(str(tmp_path / "run.ckpt"))
        assert written.endswith(".npz")
        loaded = Checkpoint.load(written)
        assert loaded.fingerprint == checkpoint.fingerprint

    def test_to_config_round_trip(self, fitted, tiny_graph):
        checkpoint = Checkpoint.from_estimator(fitted, tiny_graph)
        config = checkpoint.to_config()
        assert config.embedding_dim == 8
        assert config.epochs == 4
