"""CLI + bench surface of the serve layer, incl. the acceptance check:
``repro query --topk k`` must exactly match brute force on a seeded
pubmed-analog run for all three metrics."""

import json

import numpy as np
import pytest

from repro.cli import run
from repro.perf import run_serve_bench
from repro.serve import METRICS, Checkpoint, EmbeddingIndex


@pytest.fixture(scope="module")
def pubmed_checkpoint(tmp_path_factory):
    """One seeded pubmed-analog export shared by the CLI tests."""
    path = str(tmp_path_factory.mktemp("serve") / "pubmed.ckpt.npz")
    code = run(["export", "--dataset", "pubmed", "--scale", "0.2",
                "--dim", "32", "--epochs", "4", "--seed", "0",
                "--output", path])
    assert code == 0
    return path


class TestExportCLI:
    def test_checkpoint_is_loadable_and_fingerprinted(self, pubmed_checkpoint):
        checkpoint = Checkpoint.load(pubmed_checkpoint)
        assert checkpoint.info["dataset"] == "pubmed"
        assert checkpoint.embeddings.shape[1] == 32
        assert len(checkpoint.fingerprint) == 32
        assert checkpoint.state  # trained weights present

    def test_export_requires_data_source(self):
        with pytest.raises(SystemExit):
            run(["export"])


class TestQueryCLI:
    @pytest.mark.parametrize("metric", METRICS)
    def test_query_matches_bruteforce(self, pubmed_checkpoint, metric, capsys):
        """Acceptance: CLI results equal the full-score-matrix reference
        under the deterministic tie rule for dot, cosine, and L2."""
        topk = 7
        nodes = [0, 11, 42]
        code = run(["query", "--checkpoint", pubmed_checkpoint,
                    "--metric", metric, "--topk", str(topk)]
                   + [arg for node in nodes for arg in ("--node", str(node))])
        assert code == 0
        out = capsys.readouterr().out

        checkpoint = Checkpoint.load(pubmed_checkpoint)
        index = EmbeddingIndex(checkpoint.embeddings, metric=metric)
        scores = index.scores(checkpoint.embeddings[nodes])
        ids = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
        scores = np.array(scores)
        scores[np.arange(len(nodes)), nodes] = -np.inf  # CLI excludes self
        order = np.lexsort((ids, -scores), axis=-1)[:, :topk]

        printed = [int(line.split("|")[2]) for line in out.splitlines()
                   if "|" in line and line.split("|")[0].strip().isdigit()]
        expected = [int(col) for row in order for col in row]
        assert printed == expected

    def test_include_self_puts_query_first(self, pubmed_checkpoint, capsys):
        code = run(["query", "--checkpoint", pubmed_checkpoint,
                    "--node", "5", "--topk", "3", "--include-self"])
        assert code == 0
        rows = [line for line in capsys.readouterr().out.splitlines()
                if line.strip().startswith("5 |")]
        assert rows and int(rows[0].split("|")[2]) == 5

    def test_ivf_index_full_probe_matches_exact(self, pubmed_checkpoint,
                                                capsys):
        """--index ivf with nprobe = n-cells prints exactly what the exact
        tier prints (the bit-identity property, through the CLI)."""
        nodes = ["--node", "0", "--node", "11", "--node", "42"]
        code = run(["query", "--checkpoint", pubmed_checkpoint,
                    "--topk", "5"] + nodes)
        assert code == 0
        exact_out = capsys.readouterr().out
        code = run(["query", "--checkpoint", pubmed_checkpoint,
                    "--topk", "5", "--index", "ivf", "--n-cells", "16",
                    "--nprobe", "16"] + nodes)
        assert code == 0
        assert capsys.readouterr().out == exact_out

    def test_ivf_index_partial_probe_smoke(self, pubmed_checkpoint, capsys):
        code = run(["query", "--checkpoint", pubmed_checkpoint,
                    "--node", "3", "--topk", "4", "--index", "ivf",
                    "--nprobe", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-4 neighbors" in out


class TestServeBench:
    def test_report_records_required_numbers(self, small_graph):
        report = run_serve_bench(graph=small_graph, epochs=2, topk=5,
                                 single_queries=5, batch_size=16)
        assert report["benchmark"] == "serve"
        for metric in METRICS:
            entry = report["index"][metric]
            assert entry["build_seconds"] >= 0.0
            assert entry["single_query_mean_s"] > 0.0
            assert entry["batched_queries_per_s"] > 0.0
        assert report["checkpoint"]["save_seconds"] > 0.0
        assert report["cache"]["hit_was_cached"] is True

    def test_bench_stage_serve_cli_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_serve.json"
        code = run(["bench", "--stage", "serve", "--dataset", "webkb-cornell",
                    "--scale", "0.4", "--epochs", "2", "--batch-size", "16",
                    "--topk", "5", "--ann-nodes", "0",
                    "--output", str(output)])
        assert code == 0
        assert "serve bench" in capsys.readouterr().out
        with open(output) as handle:
            report = json.load(handle)
        assert report["benchmark"] == "serve"
        assert set(report["index"]) == set(METRICS)
        assert "ann" not in report      # --ann-nodes 0 skips the section
        assert "timestamp" in report

    def test_bench_records_ann_section(self, tmp_path, capsys):
        """A small ANN sweep lands in the report with recall and speedup per
        nprobe (the full-size numbers come from the default 100k run)."""
        output = tmp_path / "BENCH_serve.json"
        code = run(["bench", "--stage", "serve", "--dataset", "webkb-cornell",
                    "--scale", "0.4", "--epochs", "2", "--batch-size", "16",
                    "--topk", "5", "--ann-nodes", "3000", "--ann-dim", "16",
                    "--ann-queries", "64", "--output", str(output)])
        assert code == 0
        assert "approximate search" in capsys.readouterr().out
        with open(output) as handle:
            ann = json.load(handle)["ann"]
        assert ann["num_vectors"] == 3000
        assert ann["exact"]["queries_per_s"] > 0
        assert ann["n_cells"] > 0
        nprobes = [entry["nprobe"] for entry in ann["ivf"]]
        assert nprobes == sorted(nprobes) and len(nprobes) >= 3
        for entry in ann["ivf"]:
            assert 0.0 <= entry["recall_at_10"] <= 1.0
            assert entry["queries_per_s"] > 0
        # More probing can only improve recall on a fixed build.
        recalls = [entry["recall_at_10"] for entry in ann["ivf"]]
        assert recalls == sorted(recalls)

    def test_requires_dataset_or_graph(self):
        with pytest.raises(ValueError):
            run_serve_bench()
