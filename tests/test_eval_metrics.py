"""Metric tests pinned against hand-computed values."""

import numpy as np
import pytest

from repro.eval import accuracy, auc_score, f1_scores, normalized_mutual_information


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestF1:
    def test_perfect_prediction(self):
        scores = f1_scores([0, 1, 2], [0, 1, 2])
        assert scores["macro"] == 1.0
        assert scores["micro"] == 1.0

    def test_hand_computed_binary(self):
        # TP=2, FP=1, FN=1 for class 1 -> F1 = 2*2/(2*2+1+1) = 0.666...
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        scores = f1_scores(y_true, y_pred)
        f1_class1 = 4 / 6
        f1_class0 = 2 * 1 / (2 * 1 + 1 + 1)
        assert scores["macro"] == pytest.approx((f1_class0 + f1_class1) / 2)

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 50)
        y_pred = rng.integers(0, 4, 50)
        assert f1_scores(y_true, y_pred)["micro"] == pytest.approx(accuracy(y_true, y_pred))

    def test_missing_class_counts_as_zero(self):
        # Class 2 never predicted nor true-positive -> macro pulled down.
        scores = f1_scores([0, 0, 2], [0, 0, 0])
        assert scores["macro"] < 0.5


class TestAUC:
    def test_perfect_ranking(self):
        assert auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed_ranking(self):
        assert auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ranking_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(auc_score(labels, scores) - 0.5) < 0.05

    def test_ties_averaged(self):
        # All scores equal -> AUC exactly 0.5.
        assert auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_hand_computed(self):
        # pairs: (pos=0.7 vs neg 0.6, 0.8) -> wins 1 of 2 -> AUC 0.5
        assert auc_score([1, 0, 0], [0.7, 0.6, 0.8]) == pytest.approx(0.5)

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            auc_score([1, 1], [0.1, 0.2])


class TestNMI:
    def test_identical_partitions(self):
        assert normalized_mutual_information([0, 0, 1, 1], [5, 5, 9, 9]) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 5000)
        b = rng.integers(0, 2, 5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_single_cluster_prediction(self):
        assert normalized_mutual_information([0, 1, 0, 1], [0, 0, 0, 0]) == 0.0

    def test_permutation_invariant(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [2, 2, 0, 0, 1, 1]
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_hand_computed_half_overlap(self):
        # Contingency [[2,0],[1,1]]: known NMI value ~ 0.34512
        value = normalized_mutual_information([0, 0, 1, 1], [0, 0, 0, 1])
        h_true = -(0.5 * np.log(0.5)) * 2
        h_pred = -(0.75 * np.log(0.75) + 0.25 * np.log(0.25))
        mi = (0.5 * np.log(0.5 / (0.5 * 0.75))
              + 0.25 * np.log(0.25 / (0.5 * 0.75))
              + 0.25 * np.log(0.25 / (0.5 * 0.25)))
        assert value == pytest.approx(mi / (0.5 * (h_true + h_pred)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information([0, 1], [0])
