"""Round-trip tests for the LINQS .content/.cites reader and writer."""

import os

import numpy as np
import pytest

from repro.graph import AttributedGraph, citation_graph, read_linqs, write_linqs


class TestRoundTrip:
    def test_roundtrip_preserves_graph(self, tmp_path):
        g = citation_graph(num_nodes=40, num_classes=3, num_attributes=10, seed=0)
        write_linqs(g, str(tmp_path), name="toy")
        loaded = read_linqs(str(tmp_path), "toy")
        assert loaded.num_nodes == g.num_nodes
        assert loaded.num_edges == g.num_edges
        np.testing.assert_array_equal(loaded.attributes, g.attributes)
        # Labels are relabelled alphabetically but the partition is identical.
        for cls in np.unique(g.labels):
            members = np.flatnonzero(g.labels == cls)
            assert len(np.unique(loaded.labels[members])) == 1

    def test_files_created(self, tmp_path):
        g = citation_graph(num_nodes=10, num_classes=2, num_attributes=4, seed=1)
        write_linqs(g, str(tmp_path), name="t")
        assert os.path.exists(tmp_path / "t.content")
        assert os.path.exists(tmp_path / "t.cites")

    def test_float_attributes_roundtrip(self, tmp_path):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        attrs = np.array([[0.25, 1.0], [2.5, 0.0], [1.0, 1.0]])
        g = AttributedGraph(adj, attrs, labels=[0, 1, 0], name="f")
        write_linqs(g, str(tmp_path))
        loaded = read_linqs(str(tmp_path), "f")
        np.testing.assert_allclose(loaded.attributes, attrs)


class TestReaderRobustness:
    def test_missing_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_linqs(str(tmp_path), "absent")

    def test_dangling_citations_skipped(self, tmp_path):
        (tmp_path / "d.content").write_text("a\t1\t0\tx\nb\t0\t1\ty\n")
        (tmp_path / "d.cites").write_text("a\tb\na\tmissing\n")
        g = read_linqs(str(tmp_path), "d")
        assert g.num_nodes == 2
        assert g.num_edges == 1

    def test_empty_content_rejected(self, tmp_path):
        (tmp_path / "e.content").write_text("")
        (tmp_path / "e.cites").write_text("")
        with pytest.raises(ValueError):
            read_linqs(str(tmp_path), "e")

    def test_self_citations_ignored(self, tmp_path):
        (tmp_path / "s.content").write_text("a\t1\tx\nb\t0\ty\n")
        (tmp_path / "s.cites").write_text("a\ta\na\tb\n")
        g = read_linqs(str(tmp_path), "s")
        assert g.num_edges == 1
