"""Tests for the CLI and the networkx interop."""

import networkx as nx
import numpy as np
import pytest

from repro.cli import build_parser, run
from repro.graph import AttributedGraph, citation_graph


class TestNetworkxInterop:
    def test_roundtrip(self):
        g = citation_graph(num_nodes=30, num_classes=2, num_attributes=6, seed=0)
        nx_graph = g.to_networkx()
        back = AttributedGraph.from_networkx(nx_graph, name="rt")
        assert back.num_nodes == g.num_nodes
        assert back.num_edges == g.num_edges
        np.testing.assert_array_equal(back.attributes, g.attributes)
        np.testing.assert_array_equal(back.labels, g.labels)

    def test_to_networkx_carries_data(self):
        g = citation_graph(num_nodes=10, num_classes=2, num_attributes=4, seed=1)
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 10
        assert "x" in nx_graph.nodes[0]
        assert "y" in nx_graph.nodes[0]

    def test_from_networkx_weights(self):
        nx_graph = nx.Graph()
        nx_graph.add_node(0, x=[1.0])
        nx_graph.add_node(1, x=[2.0])
        nx_graph.add_edge(0, 1, weight=3.0)
        g = AttributedGraph.from_networkx(nx_graph)
        assert g.adjacency[0, 1] == 3.0
        assert g.labels is None

    def test_from_networkx_missing_attributes(self):
        nx_graph = nx.Graph()
        nx_graph.add_node(0)
        with pytest.raises(ValueError):
            AttributedGraph.from_networkx(nx_graph)


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["--dataset", "cora"])
        assert args.method == "coane"
        assert args.task == "clustering"

    def test_requires_data_source(self, capsys):
        with pytest.raises(SystemExit):
            run(["--method", "coane"])

    def test_clustering_run(self, capsys):
        code = run(["--dataset", "webkb-cornell", "--scale", "0.4",
                    "--method", "gae", "--task", "clustering", "--dim", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NMI" in out

    def test_linqs_requires_name(self):
        with pytest.raises(SystemExit):
            run(["--linqs-dir", "/tmp"])

    def test_linqs_roundtrip_run(self, tmp_path, capsys):
        from repro.graph import write_linqs

        g = citation_graph(num_nodes=60, num_classes=2, num_attributes=10, seed=0)
        write_linqs(g, str(tmp_path), name="toy")
        code = run(["--linqs-dir", str(tmp_path), "--linqs-name", "toy",
                    "--method", "gae", "--task", "clustering", "--dim", "16"])
        assert code == 0
        assert "NMI" in capsys.readouterr().out
