"""Inductive inference: frozen-encoder embeddings of seen and unseen nodes."""

import numpy as np
import pytest

from repro.core import CoANE, CoANEConfig
from repro.serve import Checkpoint, EmbeddingIndex, InductiveEncoder, augment_graph


@pytest.fixture(scope="module")
def trained(small_graph):
    estimator = CoANE(CoANEConfig(embedding_dim=16, epochs=20, seed=0))
    estimator.fit(small_graph)
    checkpoint = Checkpoint.from_estimator(estimator, small_graph)
    return estimator, checkpoint


def _cosine_rows(a, b):
    norms = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
    return (a * b).sum(axis=1) / np.maximum(norms, 1e-12)


class TestSeenNodeAgreement:
    def test_inductive_matches_transductive_on_seen_nodes(self, trained, small_graph):
        """Fresh-context embeddings of training nodes must agree with the
        trained matrix: same encoder, same graph, only the sampled contexts
        differ."""
        estimator, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=123)
        nodes = np.arange(small_graph.num_nodes)
        inductive = encoder.embed_nodes(nodes, num_walks=8)
        cosines = _cosine_rows(inductive, estimator.embeddings_)
        assert cosines.mean() > 0.9
        assert np.median(cosines) > 0.9

    def test_inductive_self_retrieval(self, trained, small_graph):
        """An inductively embedded seen node should retrieve itself (or at
        least rank it highly) in the trained index."""
        estimator, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=5)
        nodes = np.arange(0, small_graph.num_nodes, 7)
        inductive = encoder.embed_nodes(nodes, num_walks=8)
        index = EmbeddingIndex(estimator.embeddings_, metric="cosine")
        ids, _ = index.search(inductive, topk=5)
        hit_rate = (ids == nodes[:, None]).any(axis=1).mean()
        assert hit_rate > 0.8

    def test_seeded_determinism(self, trained, small_graph):
        _, checkpoint = trained
        model = checkpoint.build_model()
        config = checkpoint.to_config()
        a = InductiveEncoder(model, small_graph, config, seed=9).embed_nodes([1, 2, 3])
        b = InductiveEncoder(model, small_graph, config, seed=9).embed_nodes([1, 2, 3])
        np.testing.assert_array_equal(a, b)

    def test_duplicate_and_empty_requests(self, trained, small_graph):
        _, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=0)
        pair = encoder.embed_nodes([4, 4])
        np.testing.assert_array_equal(pair[0], pair[1])
        empty = encoder.embed_nodes([])
        assert empty.shape == (0, checkpoint.embedding_dim)
        with pytest.raises(IndexError):
            encoder.embed_nodes([small_graph.num_nodes])


class TestUnseenNodes:
    def test_augment_graph_shapes(self, small_graph):
        n = small_graph.num_nodes
        new_attrs = np.ones((2, small_graph.num_attributes))
        augmented, ids = augment_graph(small_graph, new_attrs,
                                       [[n, 0], [n + 1, 3], [n, n + 1]])
        np.testing.assert_array_equal(ids, [n, n + 1])
        assert augmented.num_nodes == n + 2
        assert augmented.has_edge(n, 0) and augmented.has_edge(n, n + 1)
        np.testing.assert_array_equal(augmented.attributes[n], new_attrs[0])

    def test_augment_graph_keeps_existing_edge_weights(self, small_graph):
        """Re-listing a known edge must not double its weight."""
        n = small_graph.num_nodes
        u = 0
        v = int(small_graph.neighbors(0)[0])
        original = small_graph.adjacency[u, v]
        augmented, _ = augment_graph(
            small_graph, np.ones((1, small_graph.num_attributes)),
            [[u, v], [n, u], [n, u]])
        assert augmented.adjacency[u, v] == original
        assert augmented.adjacency[n, u] == 1.0

    def test_augment_graph_validation(self, small_graph):
        with pytest.raises(ValueError):
            augment_graph(small_graph, np.ones((1, 3)), [])
        with pytest.raises(ValueError):
            augment_graph(small_graph, np.ones((1, small_graph.num_attributes)),
                          [[0, 10_000]])

    def test_new_node_lands_near_its_neighborhood(self, trained, small_graph):
        """A new node wired into node 0's neighborhood with node 0's
        attributes should embed close to node 0."""
        estimator, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=3)
        n = small_graph.num_nodes
        anchors = small_graph.neighbors(0)[:3].tolist() + [0]
        vector = encoder.embed_new(small_graph.attributes[0],
                                   [[n, anchor] for anchor in anchors],
                                   num_walks=8)
        assert vector.shape == (1, checkpoint.embedding_dim)
        index = EmbeddingIndex(estimator.embeddings_, metric="cosine")
        ids, _ = index.search(vector, topk=10)
        assert 0 in ids[0]

    def test_follow_up_arrivals_stack(self, trained, small_graph):
        _, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=3)
        n = small_graph.num_nodes
        first = encoder.embed_new(small_graph.attributes[1], [[n, 1]])
        second = encoder.embed_new(small_graph.attributes[2], [[n + 1, 2], [n + 1, n]])
        assert first.shape == second.shape == (1, checkpoint.embedding_dim)
        assert encoder.graph.num_nodes == n + 2

    def test_embed_new_without_persist_keeps_graph(self, trained, small_graph):
        _, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=3)
        n = small_graph.num_nodes
        preview = encoder.embed_new(small_graph.attributes[1], [[n, 1]],
                                    persist=False)
        assert preview.shape == (1, checkpoint.embedding_dim)
        assert encoder.graph.num_nodes == n

    def test_failed_embed_new_reverts_augmentation(self, trained, small_graph,
                                                   monkeypatch):
        """If embedding fails mid-arrival the graph must roll back too —
        a grown graph with no index row shifts every later arrival's id."""
        _, checkpoint = trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=3)
        n = small_graph.num_nodes
        monkeypatch.setattr(InductiveEncoder, "embed_nodes",
                            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            encoder.embed_new(small_graph.attributes[1], [[n, 1]])
        assert encoder.graph.num_nodes == n


class TestOnehopAblationServing:
    @pytest.fixture(scope="class")
    def onehop_trained(self, small_graph):
        estimator = CoANE(CoANEConfig(embedding_dim=16, epochs=10, seed=0,
                                      context_source="onehop"))
        estimator.fit(small_graph)
        return estimator, Checkpoint.from_estimator(estimator, small_graph)

    def test_subset_embedding_deterministic_and_walk_sensitive(
            self, onehop_trained, small_graph):
        _, checkpoint = onehop_trained
        model = checkpoint.build_model()
        config = checkpoint.to_config()
        a = InductiveEncoder(model, small_graph, config,
                             seed=4).embed_nodes([1, 6], num_walks=3)
        b = InductiveEncoder(model, small_graph, config,
                             seed=4).embed_nodes([1, 6], num_walks=3)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2, checkpoint.embedding_dim)

    def test_subset_agrees_with_transductive(self, onehop_trained, small_graph):
        """Scoped onehop context generation must still land near the trained
        vectors of the requested nodes."""
        estimator, checkpoint = onehop_trained
        encoder = InductiveEncoder(checkpoint.build_model(), small_graph,
                                   checkpoint.to_config(), seed=11)
        nodes = np.arange(0, small_graph.num_nodes, 5)
        vectors = encoder.embed_nodes(nodes, num_walks=8)
        cosines = _cosine_rows(vectors, estimator.embeddings_[nodes])
        assert cosines.mean() > 0.9
