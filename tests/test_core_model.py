"""Tests for the CoANE network, losses, and negative samplers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import CoANEConfig, CoANEModel, ContextualNegativeSampler, UniformNegativeSampler
from repro.core.losses import (
    attribute_preservation_loss,
    contextual_negative_loss,
    positive_graph_likelihood,
    skipgram_positive,
)
from repro.nn import Tensor


class TestConfig:
    def test_defaults_valid(self):
        CoANEConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("embedding_dim", 7),        # odd
        ("embedding_dim", 0),
        ("context_size", 4),         # even
        ("num_walks", 0),
        ("walk_length", 0),
        ("subsample_t", 0.0),
        ("num_negative", -1),
        ("negative_strength", -0.1),
        ("gamma", -1.0),
        ("sampling", "offline"),
        ("epochs", 0),
        ("learning_rate", 0.0),
        ("batch_size", 0),
        ("positive_mode", "bogus"),
        ("negative_mode", "bogus"),
        ("extractor", "transformer"),
        ("context_source", "bfs"),
    ])
    def test_invalid_settings_rejected(self, field, value):
        with pytest.raises(ValueError):
            CoANEConfig(**{field: value}).validate()

    def test_auto_sampling_by_density(self):
        cfg = CoANEConfig(sampling="auto")
        assert cfg.resolve_sampling(0.02) == "pre"    # dense (WebKB/Flickr regime)
        assert cfg.resolve_sampling(0.001) == "batch"  # sparse citation regime

    def test_explicit_sampling_respected(self):
        assert CoANEConfig(sampling="pre").resolve_sampling(0.0001) == "pre"


class TestModel:
    def test_embed_shape(self):
        model = CoANEModel(num_attributes=6, embedding_dim=8, context_size=3, seed=0)
        contexts = np.random.default_rng(0).normal(size=(5, 18))
        ids = np.array([0, 0, 1, 2, 2])
        z = model.embed(Tensor(contexts), ids, 4)
        assert z.shape == (4, 8)
        np.testing.assert_array_equal(z.data[3], 0.0)  # node without contexts

    def test_split_lr_partitions_columns(self):
        z = Tensor(np.arange(8, dtype=float).reshape(2, 4))
        left, right = CoANEModel.split_lr(z)
        np.testing.assert_allclose(left.data, [[0, 1], [4, 5]])
        np.testing.assert_allclose(right.data, [[2, 3], [6, 7]])

    def test_split_lr_gradients_flow(self):
        z = Tensor(np.ones((2, 4)), requires_grad=True)
        left, right = CoANEModel.split_lr(z)
        (left.sum() + right.sum() * 2.0).backward()
        np.testing.assert_allclose(z.grad, [[1, 1, 2, 2], [1, 1, 2, 2]])

    def test_reconstruct_shape(self):
        model = CoANEModel(num_attributes=6, embedding_dim=8, context_size=3,
                           decoder_hidden=16, seed=0)
        out = model.reconstruct(Tensor(np.zeros((3, 8))))
        assert out.shape == (3, 6)

    def test_filters_shape(self):
        model = CoANEModel(num_attributes=6, embedding_dim=8, context_size=3, seed=0)
        assert model.filters().shape == (8, 3, 6)

    def test_fc_extractor_position_invariant(self):
        model = CoANEModel(num_attributes=4, embedding_dim=6, context_size=3,
                           extractor="fc", seed=0)
        rng = np.random.default_rng(0)
        window = rng.normal(size=(3, 4))
        flat = window.reshape(1, 12)
        shuffled = window[[2, 0, 1]].reshape(1, 12)
        out1 = model.encoder(Tensor(flat))
        out2 = model.encoder(Tensor(shuffled))
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-12)

    def test_conv_extractor_position_sensitive(self):
        model = CoANEModel(num_attributes=4, embedding_dim=6, context_size=3,
                           extractor="conv", seed=0)
        rng = np.random.default_rng(0)
        window = rng.normal(size=(3, 4))
        out1 = model.encoder(Tensor(window.reshape(1, 12)))
        out2 = model.encoder(Tensor(window[[2, 0, 1]].reshape(1, 12)))
        assert np.abs(out1.data - out2.data).max() > 1e-6

    def test_odd_embedding_dim_rejected(self):
        with pytest.raises(ValueError):
            CoANEModel(num_attributes=4, embedding_dim=7, context_size=3)


class TestLosses:
    def test_positive_likelihood_decreases_with_alignment(self):
        rows = np.array([0])
        cols = np.array([1])
        weights = np.array([1.0])
        aligned = positive_graph_likelihood(
            Tensor(np.array([[5.0], [0.0]])), Tensor(np.array([[0.0], [5.0]])),
            rows, cols, weights, 2)
        opposed = positive_graph_likelihood(
            Tensor(np.array([[5.0], [0.0]])), Tensor(np.array([[0.0], [-5.0]])),
            rows, cols, weights, 2)
        assert aligned.item() < opposed.item()

    def test_positive_likelihood_weighting(self):
        rows, cols = np.array([0]), np.array([1])
        left = Tensor(np.array([[1.0], [0.0]]))
        right = Tensor(np.array([[0.0], [1.0]]))
        light = positive_graph_likelihood(left, right, rows, cols, np.array([1.0]), 1)
        heavy = positive_graph_likelihood(left, right, rows, cols, np.array([3.0]), 1)
        assert heavy.item() == pytest.approx(3 * light.item())

    def test_positive_likelihood_empty(self):
        empty = np.empty(0, dtype=np.int64)
        loss = positive_graph_likelihood(Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))),
                                         empty, empty, np.empty(0), 2)
        assert loss.item() == 0.0

    def test_skipgram_is_unweighted(self):
        rows, cols = np.array([0, 0]), np.array([1, 1])
        left = Tensor(np.array([[1.0], [0.0]]))
        right = Tensor(np.array([[0.0], [1.0]]))
        double = skipgram_positive(left, right, rows, cols, 1)
        single = skipgram_positive(left, right, rows[:1], cols[:1], 1)
        assert double.item() == pytest.approx(2 * single.item())

    def test_negative_loss_mean_over_samples(self):
        z = Tensor(np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]]))
        one = contextual_negative_loss(z, np.array([0]), np.array([[1]]), 1.0, 1)
        two = contextual_negative_loss(z, np.array([0]), np.array([[1, 2]]), 1.0, 1)
        assert one.item() == pytest.approx(two.item())  # expectation, not sum

    def test_negative_loss_zero_when_orthogonal(self):
        z = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        loss = contextual_negative_loss(z, np.array([0]), np.array([[1]]), 1.0, 1)
        assert loss.item() == pytest.approx(0.0)

    def test_negative_loss_disabled(self):
        z = Tensor(np.ones((2, 2)))
        assert contextual_negative_loss(z, np.array([0]), np.empty((1, 0), dtype=int), 1.0, 1).item() == 0.0
        assert contextual_negative_loss(z, np.array([0]), np.array([[1]]), 0.0, 1).item() == 0.0

    def test_attribute_loss_scaling(self):
        recon = Tensor(np.zeros((2, 3)))
        target = np.ones((2, 3))
        assert attribute_preservation_loss(recon, target, 2.0).item() == pytest.approx(2.0)
        assert attribute_preservation_loss(recon, target, 0.0).item() == 0.0


def _d_matrix():
    """Co-occurrence rows: node 0 co-occurs with 1; node 1 with 0, 2; node 2 with 1."""
    D = sp.csr_matrix(np.array([
        [0, 3.0, 0, 0],
        [3.0, 0, 1.0, 0],
        [0, 1.0, 0, 0],
        [0, 0, 0, 0],
    ]))
    return D


class TestNegativeSamplers:
    def test_contextual_excludes_context_members(self):
        D = _d_matrix()
        counts = np.array([2, 3, 1, 4])
        sampler = ContextualNegativeSampler(D, counts, num_negative=2, mode="pre", seed=0)
        samples = sampler.sample(np.array([0, 1, 2, 3]))
        assert samples.shape == (4, 2)
        # Node 0's context = {1}; negatives must avoid 0 and 1.
        assert not np.isin(samples[0], [0, 1]).any()
        # Node 1's context = {0, 2}; negatives must be 3.
        assert (samples[1] == 3).all()

    def test_batch_mode_samples_within_batch(self):
        D = _d_matrix()
        counts = np.array([2, 3, 1, 4])
        sampler = ContextualNegativeSampler(D, counts, num_negative=1, mode="batch", seed=0)
        batch = np.array([0, 2, 3])
        samples = sampler.sample(batch)
        assert np.isin(samples, batch).all()

    def test_adjacency_exclusion(self):
        D = sp.csr_matrix((4, 4))
        adjacency = sp.csr_matrix(np.array([
            [0, 1.0, 1.0, 0],
            [1.0, 0, 0, 0],
            [1.0, 0, 0, 0],
            [0, 0, 0, 0],
        ]))
        sampler = ContextualNegativeSampler(D, np.ones(4), num_negative=1,
                                            mode="pre", adjacency=adjacency, seed=0)
        samples = sampler.sample(np.array([0] * 20))
        assert not np.isin(samples, [0, 1, 2]).any()

    def test_contextual_probability_prefers_heavy_nodes(self):
        D = sp.csr_matrix((5, 5))
        counts = np.array([0, 0, 0, 1, 99])
        sampler = ContextualNegativeSampler(D, counts, num_negative=1, mode="pre",
                                            pool_size=2000, seed=0)
        samples = sampler.sample(np.arange(3))
        # node 4 dominates the pool
        assert (samples == 4).mean() > 0.7

    def test_uniform_sampler_excludes_context(self):
        D = _d_matrix()
        sampler = UniformNegativeSampler(D, num_negative=2, seed=0)
        samples = sampler.sample(np.array([1] * 10))
        assert not np.isin(samples, [0, 1, 2]).any()

    def test_zero_negatives(self):
        sampler = UniformNegativeSampler(_d_matrix(), num_negative=0, seed=0)
        assert sampler.sample(np.array([0, 1])).shape == (2, 0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ContextualNegativeSampler(_d_matrix(), np.ones(4), 2, mode="nope")

    def test_degenerate_full_context_falls_back(self):
        # Every node co-occurs with every other: complement is empty, the
        # sampler must still return something rather than loop forever.
        D = sp.csr_matrix(np.ones((3, 3)))
        sampler = ContextualNegativeSampler(D, np.ones(3), num_negative=2, mode="pre", seed=0)
        samples = sampler.sample(np.array([0]))
        assert samples.shape == (1, 2)
