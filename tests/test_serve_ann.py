"""IVFIndex property harness: the approximate tier's contract, pinned down.

Approximate search is the first subsystem allowed to return different *ids*
than a reference — so everything that is NOT allowed to differ is asserted
bit-exactly here: full-probe answers equal the exact index, same-seed builds
are byte-identical, every returned score is the canonical pair score, ties
break deterministically, and persistence round-trips to the byte.  What may
differ (which ids surface under partial probing) is bounded by a fixed-seed
recall gate so quantiser regressions fail CI without the 100k bench.
"""

import numpy as np
import pytest

from repro.serve import (
    METRICS,
    CheckpointCorruptError,
    EmbeddingIndex,
    IVFIndex,
    synthetic_clustered_embeddings,
)
from repro.serve.ann import _seeded_kmeans, default_n_cells


@pytest.fixture(scope="module")
def clustered():
    """Small clustered set: the geometry IVF is built for."""
    vectors, queries = synthetic_clustered_embeddings(
        600, 24, num_clusters=12, seed=3, queries=32)
    return vectors, queries


@pytest.fixture(scope="module")
def recall_fixture():
    """The ~5k fixed-seed set behind the recall regression gate."""
    return synthetic_clustered_embeddings(5000, 32, seed=11, queries=128)


def _recall(approx_ids, exact_ids, k):
    return float(np.mean([
        len(set(approx_ids[row, :k].tolist())
            & set(exact_ids[row, :k].tolist()))
        for row in range(exact_ids.shape[0])])) / k


class TestExactEquivalence:
    """Property (a): nprobe = n_cells ⇒ bit-identical to the exact index."""

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("n_cells", [1, 7, 32])
    def test_full_probe_bit_identical(self, clustered, metric, n_cells):
        vectors, queries = clustered
        exact = EmbeddingIndex(vectors, metric=metric)
        ivf = IVFIndex(vectors, metric=metric, n_cells=n_cells,
                       nprobe=n_cells)
        exact_ids, exact_scores = exact.search(queries, topk=9)
        ivf_ids, ivf_scores = ivf.search(queries, topk=9)
        np.testing.assert_array_equal(ivf_ids, exact_ids)
        assert ivf_scores.tobytes() == exact_scores.tobytes()

    @pytest.mark.parametrize("dim", [4, 24])
    def test_full_probe_override_bit_identical(self, dim):
        """A partial-probe index answers exactly when one call overrides
        nprobe to the cell count."""
        vectors, queries = synthetic_clustered_embeddings(
            300, dim, num_clusters=6, seed=5, queries=16)
        exact = EmbeddingIndex(vectors, metric="cosine")
        ivf = IVFIndex(vectors, metric="cosine", n_cells=16, nprobe=2)
        exact_ids, exact_scores = exact.search(queries, topk=5)
        ivf_ids, ivf_scores = ivf.search(queries, topk=5, nprobe=16)
        np.testing.assert_array_equal(ivf_ids, exact_ids)
        assert ivf_scores.tobytes() == exact_scores.tobytes()

    @pytest.mark.parametrize("metric", METRICS)
    def test_full_probe_search_ids_with_exclusion(self, clustered, metric):
        vectors, _ = clustered
        exact = EmbeddingIndex(vectors, metric=metric)
        ivf = IVFIndex(vectors, metric=metric, n_cells=8, nprobe=8)
        nodes = np.arange(0, 600, 37)
        exact_ids, exact_scores = exact.search_ids(nodes, topk=6)
        ivf_ids, ivf_scores = ivf.search_ids(nodes, topk=6)
        np.testing.assert_array_equal(ivf_ids, exact_ids)
        assert ivf_scores.tobytes() == exact_scores.tobytes()


class TestCanonicalScores:
    """Property (c): every returned score equals the exact tier's canonical
    pair score for that (query, id) — only *which* ids surface may differ."""

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("nprobe", [1, 2, 4])
    def test_partial_probe_scores_are_exact_values(self, clustered, metric,
                                                   nprobe):
        vectors, queries = clustered
        exact = EmbeddingIndex(vectors, metric=metric)
        ivf = IVFIndex(vectors, metric=metric, n_cells=24, nprobe=nprobe)
        ids, scores = ivf.search(queries, topk=8)
        assert scores.tobytes() == exact.pair_scores(queries, ids).tobytes()

    def test_pq_scores_are_exact_values(self, clustered):
        vectors, queries = clustered
        exact = EmbeddingIndex(vectors, metric="cosine")
        ivf = IVFIndex(vectors, metric="cosine", n_cells=24, nprobe=4,
                       pq_m=8)
        ids, scores = ivf.search(queries, topk=8)
        assert scores.tobytes() == exact.pair_scores(queries, ids).tobytes()

    def test_rows_obey_tie_rule(self, clustered):
        """Rows come back score-descending with ties broken by lower id."""
        vectors, queries = clustered
        duplicated = np.repeat(vectors[:50], 3, axis=0)
        ivf = IVFIndex(duplicated, metric="cosine", n_cells=6, nprobe=2,
                       seed=1)
        ids, scores = ivf.search(queries, topk=12)
        for row in range(ids.shape[0]):
            for col in range(1, ids.shape[1]):
                assert (scores[row, col] < scores[row, col - 1]
                        or (scores[row, col] == scores[row, col - 1]
                            and ids[row, col] > ids[row, col - 1]))


class TestDeterminism:
    """Property (b): same seed ⇒ byte-identical assignments and answers."""

    @pytest.mark.parametrize("metric", METRICS)
    def test_same_seed_byte_identical(self, clustered, metric):
        vectors, queries = clustered
        first = IVFIndex(vectors, metric=metric, n_cells=20, nprobe=3,
                         seed=9)
        second = IVFIndex(vectors, metric=metric, n_cells=20, nprobe=3,
                          seed=9)
        assert first._cell_of.tobytes() == second._cell_of.tobytes()
        assert first._centroids.tobytes() == second._centroids.tobytes()
        ids_a, scores_a = first.search(queries, topk=7)
        ids_b, scores_b = second.search(queries, topk=7)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert scores_a.tobytes() == scores_b.tobytes()

    def test_replayed_mutations_byte_identical(self, clustered):
        """The same add()/update() sequence reproduces the same index state,
        including any retrains it triggered."""
        vectors, queries = clustered

        def build():
            index = IVFIndex(vectors[:400], metric="cosine", n_cells=16,
                             nprobe=4, seed=2, retrain_imbalance=1.5)
            index.add(vectors[400:550])
            index.update(3, vectors[590])
            index.add(vectors[550:590])
            return index

        first, second = build(), build()
        assert first.retrains == second.retrains
        assert first._cell_of.tobytes() == second._cell_of.tobytes()
        ids_a, scores_a = first.search(queries, topk=6)
        ids_b, scores_b = second.search(queries, topk=6)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert scores_a.tobytes() == scores_b.tobytes()

    def test_kmeans_is_deterministic(self, rng):
        rows = rng.standard_normal((200, 8)).astype(np.float32)
        a = _seeded_kmeans(rows, 10, np.random.default_rng(4))
        b = _seeded_kmeans(rows, 10, np.random.default_rng(4))
        assert a.tobytes() == b.tobytes()
        assert a.shape == (10, 8)


class TestDegenerateInputs:
    def test_fewer_vectors_than_cells(self, clustered):
        """n < n_cells clips the cell count; answers stay exact (every
        vector gets its own cell at most)."""
        vectors, queries = clustered
        ivf = IVFIndex(vectors[:5], metric="cosine", n_cells=64, nprobe=4)
        assert ivf.n_cells <= 5
        exact = EmbeddingIndex(vectors[:5], metric="cosine")
        exact_ids, exact_scores = exact.search(queries, topk=10)
        ids, scores = ivf.search(queries, topk=10)
        assert ids.shape == (32, 5)
        np.testing.assert_array_equal(ids, exact_ids)
        assert scores.tobytes() == exact_scores.tobytes()

    def test_single_cell_delegates_to_exact(self, clustered):
        vectors, queries = clustered
        ivf = IVFIndex(vectors, metric="l2", n_cells=1)
        exact = EmbeddingIndex(vectors, metric="l2")
        exact_ids, exact_scores = exact.search(queries, topk=4)
        ids, scores = ivf.search(queries, topk=4)
        np.testing.assert_array_equal(ids, exact_ids)
        assert scores.tobytes() == exact_scores.tobytes()

    def test_duplicate_vectors_everywhere(self, clustered):
        """An index of pure duplicates must still return k distinct ids,
        lowest first."""
        _, queries = clustered
        vectors = np.ones((30, 24), dtype=np.float32)
        ivf = IVFIndex(vectors, metric="dot", n_cells=4, nprobe=1, seed=0)
        ids, scores = ivf.search(queries[:3], topk=5)
        for row in range(3):
            assert len(set(ids[row].tolist())) == 5
            np.testing.assert_array_equal(np.sort(ids[row]), ids[row])

    def test_empty_index(self):
        ivf = IVFIndex(np.empty((0, 8), dtype=np.float32), n_cells=4)
        ids, scores = ivf.search(np.ones((2, 8)), topk=3)
        assert ids.shape == (2, 0) and scores.shape == (2, 0)

    def test_single_vector(self):
        ivf = IVFIndex(np.ones((1, 8)), metric="cosine", n_cells=4)
        ids, scores = ivf.search(np.ones((2, 8)), topk=3)
        assert ids.shape == (2, 1)
        np.testing.assert_array_equal(ids, [[0], [0]])

    def test_escalation_covers_small_probed_cells(self, clustered):
        """When the probed cells hold fewer than k members the search must
        escalate to further cells instead of padding with bogus ids."""
        vectors, queries = clustered
        ivf = IVFIndex(vectors, metric="cosine", n_cells=100, nprobe=1,
                       seed=0)
        topk = int(ivf.cell_sizes.max()) + 5    # > any single cell
        ids, scores = ivf.search(queries, topk=topk)
        assert ids.shape == (32, topk)
        for row in range(ids.shape[0]):
            assert len(set(ids[row].tolist())) == topk
        assert ids.max() < 600 and ids.min() >= 0

    def test_invalid_parameters(self, clustered):
        vectors, _ = clustered
        with pytest.raises(ValueError):
            IVFIndex(vectors, n_cells=0)
        with pytest.raises(ValueError):
            IVFIndex(vectors, nprobe=0)
        with pytest.raises(ValueError):
            IVFIndex(vectors, retrain_imbalance=1.0)
        with pytest.raises(ValueError):
            IVFIndex(vectors, pq_m=7)           # must divide dim=24... 7 no
        with pytest.raises(ValueError):
            IVFIndex(np.empty((0, 8), dtype=np.float32), pq_m=2)
        ivf = IVFIndex(vectors, n_cells=8)
        with pytest.raises(ValueError):
            ivf.search(vectors[:2], nprobe=0)


@pytest.mark.parametrize("tier", ["exact", "ivf"])
class TestSharedEdgeCases:
    """The latent top_k edge cases, parametrised over BOTH tiers: topk > n
    clips, topk = 0 is a valid empty request, negative topk raises."""

    def _build(self, tier, vectors, metric="cosine"):
        if tier == "exact":
            return EmbeddingIndex(vectors, metric=metric)
        return IVFIndex(vectors, metric=metric, n_cells=6, nprobe=2, seed=0)

    def test_topk_larger_than_index_clips(self, tier, clustered):
        vectors, queries = clustered
        index = self._build(tier, vectors[:9])
        ids, scores = index.search(queries, topk=50)
        assert ids.shape == (32, 9) and scores.shape == (32, 9)
        for row in range(32):
            assert set(ids[row].tolist()) == set(range(9))

    def test_topk_zero_returns_empty(self, tier, clustered):
        vectors, queries = clustered
        index = self._build(tier, vectors)
        ids, scores = index.search(queries, topk=0)
        assert ids.shape == (32, 0) and scores.shape == (32, 0)
        assert ids.dtype == np.int64 and scores.dtype == np.float32

    def test_negative_topk_raises(self, tier, clustered):
        vectors, queries = clustered
        index = self._build(tier, vectors)
        with pytest.raises(ValueError):
            index.search(queries, topk=-1)

    def test_exclusion_with_topk_at_size(self, tier, clustered):
        vectors, _ = clustered
        index = self._build(tier, vectors[:7])
        ids, scores = index.search_ids([2, 5], topk=50)
        assert ids.shape == (2, 6)
        assert 2 not in ids[0] and 5 not in ids[1]
        assert np.isfinite(scores).all()

    def test_mismatched_query_dim_raises(self, tier, clustered):
        vectors, _ = clustered
        index = self._build(tier, vectors)
        with pytest.raises(ValueError):
            index.search(np.zeros((2, 5)), topk=3)


class TestRecallGate:
    """Fixed-seed recall regression gate (~5k vectors): everything here is
    fully deterministic, so these are regression thresholds with real
    margin, not flaky statistical tests.  Measured on this fixture:
    nprobe=8 ⇒ recall@1 = 1.000, recall@10 = 0.981; nprobe=4 ⇒ 0.938/0.915."""

    def test_recall_thresholds(self, recall_fixture):
        vectors, queries = recall_fixture
        exact = EmbeddingIndex(vectors, metric="cosine")
        exact_ids, _ = exact.search(queries, topk=10)
        ivf = IVFIndex(vectors, metric="cosine", seed=0, nprobe=8)
        assert ivf.n_cells == default_n_cells(5000) == 283
        ids, _ = ivf.search(queries, topk=10)
        assert _recall(ids, exact_ids, 1) >= 0.97
        assert _recall(ids, exact_ids, 10) >= 0.95

    def test_recall_grows_with_nprobe(self, recall_fixture):
        vectors, queries = recall_fixture
        exact = EmbeddingIndex(vectors, metric="cosine")
        exact_ids, _ = exact.search(queries, topk=10)
        ivf = IVFIndex(vectors, metric="cosine", seed=0)
        recalls = []
        for nprobe in (1, 4, 16):
            ids, _ = ivf.search(queries, topk=10, nprobe=nprobe)
            recalls.append(_recall(ids, exact_ids, 10))
        assert recalls[0] < recalls[1] < recalls[2]
        assert recalls[2] >= 0.99

    def test_pq_recall_with_rerank(self, recall_fixture):
        """The compressed scan plus exact re-rank stays within a few recall
        points of the uncompressed scan."""
        vectors, queries = recall_fixture
        exact = EmbeddingIndex(vectors, metric="cosine")
        exact_ids, _ = exact.search(queries, topk=10)
        pq = IVFIndex(vectors, metric="cosine", seed=0, nprobe=8, pq_m=8)
        ids, _ = pq.search(queries, topk=10)
        assert _recall(ids, exact_ids, 10) >= 0.90


class TestPersistence:
    @pytest.mark.parametrize("metric", METRICS)
    def test_round_trip_answers_byte_identically(self, clustered, metric,
                                                 tmp_path):
        vectors, queries = clustered
        ivf = IVFIndex(vectors, metric=metric, n_cells=20, nprobe=3, seed=4)
        path = ivf.save(str(tmp_path / "ivf"))
        assert path.endswith(".npz")
        loaded = IVFIndex.load(path)
        assert loaded.n_cells == 20 and loaded.nprobe == 3
        assert loaded._cell_of.tobytes() == ivf._cell_of.tobytes()
        ids_a, scores_a = ivf.search(queries, topk=8)
        ids_b, scores_b = loaded.search(queries, topk=8)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert scores_a.tobytes() == scores_b.tobytes()

    def test_round_trip_preserves_pq(self, clustered, tmp_path):
        vectors, queries = clustered
        ivf = IVFIndex(vectors, metric="l2", n_cells=12, nprobe=2, seed=4,
                       pq_m=4)
        loaded = IVFIndex.load(ivf.save(str(tmp_path / "pq")))
        ids_a, scores_a = ivf.search(queries, topk=5)
        ids_b, scores_b = loaded.search(queries, topk=5)
        assert ids_a.tobytes() == ids_b.tobytes()
        assert scores_a.tobytes() == scores_b.tobytes()

    def test_round_trip_keeps_accepting_adds(self, clustered, tmp_path):
        vectors, _ = clustered
        ivf = IVFIndex(vectors[:500], metric="cosine", n_cells=10, seed=1)
        loaded = IVFIndex.load(ivf.save(str(tmp_path / "grow")))
        np.testing.assert_array_equal(loaded.add(vectors[500:503]),
                                      [500, 501, 502])

    def test_doctored_archive_raises_corrupt(self, clustered, tmp_path):
        vectors, _ = clustered
        ivf = IVFIndex(vectors, metric="cosine", n_cells=8, seed=0)
        path = ivf.save(str(tmp_path / "victim"))
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError):
            IVFIndex.load(path)

    def test_truncated_archive_raises_corrupt(self, clustered, tmp_path):
        vectors, _ = clustered
        ivf = IVFIndex(vectors, metric="cosine", n_cells=8, seed=0)
        path = ivf.save(str(tmp_path / "torn"))
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:len(raw) // 3])
        with pytest.raises(CheckpointCorruptError):
            IVFIndex.load(path)

    def test_foreign_archive_rejected(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="not an IVF index archive"):
            IVFIndex.load(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            IVFIndex.load(str(tmp_path / "nope.npz"))


class TestIncrementalAdds:
    def test_added_vectors_become_searchable(self, clustered):
        vectors, _ = clustered
        ivf = IVFIndex(vectors[:500], metric="cosine", n_cells=16, nprobe=4,
                       seed=0)
        new_ids = ivf.add(vectors[500:510])
        np.testing.assert_array_equal(new_ids, np.arange(500, 510))
        assert ivf.num_vectors == 510
        # A just-added vector is its own best match under cosine.
        ids, _ = ivf.search(vectors[505:506], topk=1)
        assert ids[0, 0] == 505

    def test_imbalance_triggers_retrain(self, clustered, rng):
        """Flooding one region past the imbalance factor forces a full
        re-cluster that rebalances the cells."""
        vectors, _ = clustered
        ivf = IVFIndex(vectors, metric="cosine", n_cells=16, nprobe=4,
                       seed=0, retrain_imbalance=2.0)
        assert ivf.retrains == 0
        hotspot = vectors[7] + 0.01 * rng.standard_normal(
            (600, 24)).astype(np.float32)
        ivf.add(hotspot)
        assert ivf.retrains >= 1
        # The re-cluster split the flooded region: before it, one cell held
        # all 600 arrivals plus its original members.
        assert ivf.cell_sizes.sum() == ivf.num_vectors
        assert ivf.cell_sizes.max() < 600

    def test_update_moves_vector_between_cells(self, clustered):
        vectors, _ = clustered
        ivf = IVFIndex(vectors, metric="cosine", n_cells=16, nprobe=16,
                       seed=0)
        # Replace node 0 with a copy of a far-away node's vector: full-probe
        # search must now find it exactly where the exact tier does.
        ivf.update(0, vectors[599])
        exact = EmbeddingIndex(
            np.vstack([vectors[599:600], vectors[1:]]), metric="cosine")
        ids_a, scores_a = ivf.search(vectors[599:600], topk=3)
        ids_b, scores_b = exact.search(vectors[599:600], topk=3)
        np.testing.assert_array_equal(ids_a, ids_b)
        assert scores_a.tobytes() == scores_b.tobytes()


class TestSyntheticGenerator:
    def test_seeded_and_shaped(self):
        a_vectors, a_queries = synthetic_clustered_embeddings(
            100, 8, seed=1, queries=10)
        b_vectors, b_queries = synthetic_clustered_embeddings(
            100, 8, seed=1, queries=10)
        assert a_vectors.shape == (100, 8) and a_queries.shape == (10, 8)
        assert a_vectors.dtype == np.float32
        assert a_vectors.tobytes() == b_vectors.tobytes()
        assert a_queries.tobytes() == b_queries.tobytes()

    def test_no_queries_by_default(self):
        vectors, queries = synthetic_clustered_embeddings(50, 4, seed=0)
        assert vectors.shape == (50, 4) and queries.shape == (0, 4)
