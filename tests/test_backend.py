"""The compute-backend seam: registry, cache hygiene, and numerical parity.

Three classes of guarantee:

* **Bit-identity of the numpy reference** — the float64 losses and embedding
  digests pinned below were captured on the pre-seam implementation (raw
  ``np.*`` calls inside ``repro.nn``); the refactored stack must reproduce
  them byte for byte.
* **Cache hygiene** — selector/pooling state is keyed by (digest, rows, len,
  dtype, backend, kind) and cleared on backend activation, so a mid-process
  dtype or backend switch can never be served stale state.
* **Cross-backend parity** — when torch is importable, its ops must match
  numpy elementwise/GEMM semantics, and a float64 torch fit must track the
  numpy loss trajectory within a pinned tolerance from identical seeded
  weights (initialisation is numpy-pinned by design).
"""

import hashlib

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import CoANE, CoANEConfig
from repro.graph import citation_graph
from repro.nn import backend as nnb
from repro.nn.backend.numpy_ops import grouping_selector

requires_torch = pytest.mark.skipif(not nnb.torch_available(),
                                    reason="torch not installed")


# Captured on the pre-refactor implementation (commit 1678ba0); the numpy
# backend must reproduce these bit for bit at float64.  Graph: citation_graph
# (60 nodes, 3 classes, 30 attributes, homophily 0.8, seed 11).
GOLDEN_FULL_BATCH_LOSSES = [354.6369146191337, 312.9476639589609,
                            288.648255739362, 262.3054572105151]
GOLDEN_FULL_BATCH_DIGEST = "6c9c169a78c392dab11cdb9bba282892"
GOLDEN_MINI_BATCH_LOSSES = [312.85213487788144, 227.74299946452354,
                            186.0010913510347]
GOLDEN_MINI_BATCH_DIGEST = "dcc7ddb80cff23aeca59a82ceadc363e"


def _golden_graph():
    return citation_graph(num_nodes=60, num_classes=3, num_attributes=30,
                          avg_degree=4.0, homophily=0.8, seed=11)


def _golden_config(**overrides):
    base = dict(embedding_dim=16, decoder_hidden=24, epochs=4, seed=0,
                walk_length=15, num_walks=2, subsample_t=1e-4)
    base.update(overrides)
    return CoANEConfig(**base)


def _digest(array) -> str:
    return hashlib.blake2b(array.tobytes(), digest_size=16).hexdigest()


class TestRegistry:
    def test_numpy_is_default_and_always_available(self):
        assert "numpy" in nnb.available_backends()
        assert nnb.get_backend().name in nnb.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            nnb.set_backend("tensorflow")

    def test_resolve_precedence(self):
        assert nnb.resolve_backend("numpy") == "numpy"
        assert nnb.resolve_backend("torch") == "torch"  # explicit wins
        assert nnb.resolve_backend(None) == nnb.active_backend_name()
        assert nnb.resolve_backend("auto") == nnb.active_backend_name()

    def test_use_backend_restores_previous(self):
        before = nnb.active_backend_name()
        with nnb.use_backend("numpy"):
            assert nnb.active_backend_name() == "numpy"
        assert nnb.active_backend_name() == before

    def test_env_names_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda-magic")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            nnb._default_backend_name()

    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert nnb._default_backend_name() == "numpy"

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            CoANEConfig(backend="tensorflow").validate()
        CoANEConfig(backend="torch").validate()  # valid even if not installed


class TestSelectorCacheHygiene:
    def test_entries_keyed_by_dtype_backend_and_kind(self):
        nnb.clear_selector_cache()
        index = np.array([0, 1, 1, 2])
        built = []

        def builder(tag):
            def build():
                built.append(tag)
                return tag
            return build

        cache = nnb.selector_cache
        assert cache.get(index, 3, builder("a"), dtype=np.float64,
                         backend="numpy", kind="selector") == "a"
        # Same key: served from cache, builder not called again.
        assert cache.get(index, 3, builder("a2"), dtype=np.float64,
                         backend="numpy", kind="selector") == "a"
        # dtype, backend, and kind each produce a distinct entry.
        assert cache.get(index, 3, builder("b"), dtype=np.float32,
                         backend="numpy", kind="selector") == "b"
        assert cache.get(index, 3, builder("c"), dtype=np.float64,
                         backend="torch", kind="selector") == "c"
        assert cache.get(index, 3, builder("d"), dtype=np.float64,
                         backend="numpy", kind="counts") == "d"
        assert built == ["a", "b", "c", "d"]
        nnb.clear_selector_cache()

    def test_backend_activation_clears_cache(self):
        nnb.clear_selector_cache()
        grouping_selector(np.array([0, 1, 0]), 2)
        assert len(nnb.selector_cache) == 1
        nnb.set_backend(nnb.active_backend_name())
        assert len(nnb.selector_cache) == 0

    def test_use_backend_scope_clears_on_entry_and_exit(self):
        nnb.clear_selector_cache()

        class FakeOps(nnb.NumpyOps):
            name = "fake"

        nnb.register_backend("fake", FakeOps)
        try:
            grouping_selector(np.array([0, 1, 0]), 2)
            assert len(nnb.selector_cache) == 1
            with nnb.use_backend("fake"):
                assert len(nnb.selector_cache) == 0
                grouping_selector(np.array([0, 1, 0]), 2)
                assert len(nnb.selector_cache) == 1
            assert len(nnb.selector_cache) == 0
        finally:
            nnb._REGISTRY.pop("fake", None)

    def test_dtype_switch_mid_process_gets_fresh_selector(self):
        nnb.clear_selector_cache()
        index = np.array([0, 0, 1])
        s64 = grouping_selector(index, 2, dtype=np.float64)
        s32 = grouping_selector(index, 2, dtype=np.float32)
        assert s64.dtype == np.float64
        assert s32.dtype == np.float32
        assert s64 is not s32
        # Repeat lookups hit the per-dtype entries.
        assert grouping_selector(index, 2, dtype=np.float64) is s64
        assert grouping_selector(index, 2, dtype=np.float32) is s32
        nnb.clear_selector_cache()


class TestNumpyBitIdentity:
    def test_full_batch_reproduces_preseam_goldens(self):
        with nnb.use_backend("numpy"):
            est = CoANE(_golden_config()).fit(_golden_graph())
        assert [r["loss"] for r in est.history_] == GOLDEN_FULL_BATCH_LOSSES
        assert est.embeddings_.dtype == np.float64
        assert _digest(est.embeddings_) == GOLDEN_FULL_BATCH_DIGEST

    def test_mini_batch_reproduces_preseam_goldens(self):
        with nnb.use_backend("numpy"):
            est = CoANE(_golden_config(epochs=3,
                                       batch_size=16)).fit(_golden_graph())
        assert [r["loss"] for r in est.history_] == GOLDEN_MINI_BATCH_LOSSES
        assert _digest(est.embeddings_) == GOLDEN_MINI_BATCH_DIGEST

    def test_gemm_chunking_matches_unchunked(self, monkeypatch):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(64, 8))
        b = rng.normal(size=(8, 5))
        expected = a @ b
        monkeypatch.setenv("REPRO_GEMM_CHUNK", "8")
        assert nnb.gemm_chunk_rows() == 8
        chunked = nnb.NumpyOps().matmul(a, b)
        np.testing.assert_allclose(chunked, expected, rtol=1e-12)

    def test_gemm_chunk_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_GEMM_CHUNK", raising=False)
        assert nnb.gemm_chunk_rows() == 0
        monkeypatch.setenv("REPRO_GEMM_CHUNK", "0")
        assert nnb.gemm_chunk_rows() == 0
        monkeypatch.setenv("REPRO_GEMM_CHUNK", "auto")
        assert nnb.gemm_chunk_rows() == 4096 * nnb.blas_threads()
        monkeypatch.setenv("REPRO_GEMM_CHUNK", "bogus")
        with pytest.raises(ValueError, match="REPRO_GEMM_CHUNK"):
            nnb.gemm_chunk_rows()


class TestBackendNeutralState:
    def test_training_state_matches_ignores_backend(self):
        from repro.resilience.training import TrainingState

        config = {"embedding_dim": 16, "backend": "numpy"}
        state = TrainingState(epoch=1, params={}, optimizer={}, rng_states={},
                              history=[], fingerprint="fp", config=config)
        state.matches("fp", {"embedding_dim": 16, "backend": "torch"})
        state.matches("fp", {"embedding_dim": 16, "backend": "auto"})
        from repro.resilience.training import ResumeMismatchError
        with pytest.raises(ResumeMismatchError):
            state.matches("fp", {"embedding_dim": 32, "backend": "numpy"})

    def test_state_dict_stays_numpy_under_any_backend(self):
        est = CoANE(_golden_config(epochs=1)).fit(_golden_graph())
        for name, value in est.model_.state_dict().items():
            assert isinstance(value, np.ndarray), name

    def test_resume_accepts_backend_field_change(self, tmp_path):
        path = str(tmp_path / "state.npz")
        graph = _golden_graph()
        full = CoANE(_golden_config(checkpoint_path=path)).fit(graph)
        # Re-fit with resume under an explicitly named backend: the stored
        # state (captured under backend="auto") must be accepted and the
        # continuation must finish with the same embeddings.
        resumed = CoANE(_golden_config(checkpoint_path=path,
                                       backend="numpy")).fit(graph,
                                                             resume=True)
        np.testing.assert_array_equal(full.embeddings_, resumed.embeddings_)


class TestServingNoGrad:
    def test_scorer_refits_run_under_no_grad(self, tiny_graph, monkeypatch):
        from repro.nn.tensor import _grad_enabled
        from repro.serve import Checkpoint
        from repro.serve.service import EmbeddingService
        import repro.serve.service as service_module

        est = CoANE(_golden_config(epochs=1)).fit(tiny_graph)
        checkpoint = Checkpoint.from_estimator(est, tiny_graph)
        service = EmbeddingService(checkpoint, graph=tiny_graph)

        observed = {}
        real_edge, real_label = service_module.EdgeScorer, service_module.LabelScorer

        class SpyEdge(real_edge):
            def __init__(self, *args, **kwargs):
                observed["edge_grad_enabled"] = _grad_enabled()
                super().__init__(*args, **kwargs)

        class SpyLabel(real_label):
            def __init__(self, *args, **kwargs):
                observed["label_grad_enabled"] = _grad_enabled()
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(service_module, "EdgeScorer", SpyEdge)
        monkeypatch.setattr(service_module, "LabelScorer", SpyLabel)
        service.score_edges([(0, 1)])
        service.classify(nodes=[0])
        assert observed == {"edge_grad_enabled": False,
                            "label_grad_enabled": False}

    def test_inductive_embed_builds_no_graph(self, tiny_graph):
        from repro.serve import Checkpoint
        from repro.serve.inductive import InductiveEncoder

        est = CoANE(_golden_config(epochs=1)).fit(tiny_graph)
        checkpoint = Checkpoint.from_estimator(est, tiny_graph)
        encoder = InductiveEncoder(checkpoint.build_model(), tiny_graph,
                                   checkpoint.to_config(), seed=0)
        rng = np.random.default_rng(0)
        new_attrs = rng.random((2, tiny_graph.attributes.shape[1]))
        new_edges = [(0, 1), (1, 2)]
        vectors = encoder.embed_new(new_attrs, new_edges, persist=False)
        assert vectors.shape == (2, est.config.embedding_dim)
        # Inference left no gradient state behind on the frozen model.
        assert all(p.grad is None for p in encoder.model.parameters())


@requires_torch
class TestTorchOpsParity:
    """Elementwise/GEMM parity of the torch ops against numpy semantics."""

    def setup_method(self):
        self.ops = nnb._instantiate("torch")
        self.rng = np.random.default_rng(0)

    def test_matmul_and_outer(self):
        a = self.rng.normal(size=(5, 4))
        b = self.rng.normal(size=(4, 3))
        np.testing.assert_allclose(self.ops.matmul(a, b), a @ b, atol=1e-12)
        v, w = self.rng.normal(size=3), self.rng.normal(size=4)
        np.testing.assert_allclose(self.ops.outer(v, w), np.outer(v, w),
                                   atol=1e-12)

    def test_elementwise_family(self):
        x = self.rng.normal(size=(3, 4))
        np.testing.assert_allclose(self.ops.exp(x), np.exp(x), atol=1e-12)
        np.testing.assert_allclose(self.ops.tanh(x), np.tanh(x), atol=1e-12)
        np.testing.assert_allclose(self.ops.logaddexp(0.0, x),
                                   np.logaddexp(0.0, x), atol=1e-12)
        np.testing.assert_allclose(self.ops.clip(x, -0.5, 0.5),
                                   np.clip(x, -0.5, 0.5), atol=1e-12)
        np.testing.assert_allclose(self.ops.where(x > 0, x, 0.0),
                                   np.where(x > 0, x, 0.0), atol=1e-12)

    def test_reductions_preserve_shape_contract(self):
        x = self.rng.normal(size=(3, 4))
        assert self.ops.sum(x).shape == ()
        assert self.ops.sum(x, axis=0).shape == (4,)
        assert self.ops.sum(x, axis=1, keepdims=True).shape == (3, 1)
        np.testing.assert_allclose(self.ops.sum(x, axis=0), x.sum(axis=0),
                                   atol=1e-12)

    def test_scatter_and_segment(self):
        index = np.array([0, 2, 2, 1])
        values = self.rng.normal(size=(4, 3))
        expected = np.zeros((3, 3))
        np.add.at(expected, index, values)
        np.testing.assert_allclose(
            self.ops.scatter_rows(3, index, values, values.dtype), expected,
            atol=1e-12)
        np.testing.assert_allclose(
            self.ops.segment_sum(values, index, 3), expected, atol=1e-12)

    def test_sparse_matmul_caches_conversion(self):
        sparse_const = sp.random(6, 5, density=0.4, random_state=0,
                                 format="csr")
        dense = self.rng.normal(size=(5, 2))
        out = self.ops.sparse_matmul(sparse_const, dense)
        np.testing.assert_allclose(out, sparse_const @ dense, atol=1e-10)
        assert hasattr(sparse_const, "_repro_torch_csr")
        again = self.ops.sparse_matmul(sparse_const, dense)
        np.testing.assert_allclose(again, out, atol=0)


@requires_torch
class TestTorchTrainerParity:
    def test_float64_loss_trajectory_tracks_numpy(self):
        graph = _golden_graph()
        with nnb.use_backend("numpy"):
            ref = CoANE(_golden_config()).fit(graph)
        torch_est = CoANE(_golden_config(backend="torch")).fit(graph)
        ref_losses = np.array([r["loss"] for r in ref.history_])
        torch_losses = np.array([r["loss"] for r in torch_est.history_])
        # Same seeded numpy init + float64 kernels: trajectories agree to
        # BLAS reduction-order noise, far below any modelling signal.
        np.testing.assert_allclose(torch_losses, ref_losses, rtol=1e-8)
        cosine = (ref.embeddings_ * torch_est.embeddings_).sum(axis=1)
        norms = (np.linalg.norm(ref.embeddings_, axis=1)
                 * np.linalg.norm(torch_est.embeddings_, axis=1))
        assert (cosine[norms > 0] / norms[norms > 0]).min() > 0.999999


class TestGoldensUnderArmedTracing:
    """The repro.obs determinism contract: instrumentation never touches an
    RNG stream or a numeric path, so the pinned goldens must hold byte for
    byte with tracing fully armed — manifest, epoch/batch spans, grad-norm
    diagnostics and all."""

    def test_full_batch_goldens_hold_with_trace_armed(self, tmp_path):
        from repro.obs.tracing import read_trace

        trace = tmp_path / "golden_full.jsonl"
        with nnb.use_backend("numpy"):
            est = CoANE(_golden_config(
                trace_path=str(trace))).fit(_golden_graph())
        assert [r["loss"] for r in est.history_] == GOLDEN_FULL_BATCH_LOSSES
        assert _digest(est.embeddings_) == GOLDEN_FULL_BATCH_DIGEST
        # And the trace really was armed: the losses it recorded are the
        # goldens themselves.
        epochs = [r for r in read_trace(str(trace))
                  if r["type"] == "span_end" and r["name"] == "train.epoch"]
        assert [r["attrs"]["loss"] for r in epochs] == GOLDEN_FULL_BATCH_LOSSES
        assert all(r["attrs"]["grad_norm"] >= 0.0 for r in epochs)

    def test_mini_batch_goldens_hold_with_trace_armed(self, tmp_path):
        from repro.obs.tracing import read_trace

        trace = tmp_path / "golden_mini.jsonl"
        with nnb.use_backend("numpy"):
            est = CoANE(_golden_config(
                epochs=3, batch_size=16,
                trace_path=str(trace))).fit(_golden_graph())
        assert [r["loss"] for r in est.history_] == GOLDEN_MINI_BATCH_LOSSES
        assert _digest(est.embeddings_) == GOLDEN_MINI_BATCH_DIGEST
        names = {r["name"] for r in read_trace(str(trace))
                 if r["type"] == "span_start"}
        assert {"train.epoch", "train.batch"} <= names
