"""Shared fixtures: small seeded graphs reused across the test suite."""

import numpy as np
import pytest

from repro.graph import citation_graph, social_circle_graph


@pytest.fixture(scope="session")
def small_graph():
    """~120-node homophilous citation graph with 3 classes."""
    return citation_graph(num_nodes=120, num_classes=3, num_attributes=60,
                          avg_degree=4.0, homophily=0.8, seed=7)


@pytest.fixture(scope="session")
def tiny_graph():
    """~40-node graph for the most expensive end-to-end tests."""
    return citation_graph(num_nodes=40, num_classes=2, num_attributes=20,
                          avg_degree=3.0, homophily=0.85, seed=3)


@pytest.fixture(scope="session")
def circle_graph():
    """Social-circle graph (the Flickr-analog generator)."""
    return social_circle_graph(num_nodes=150, num_classes=3, num_attributes=80,
                               avg_degree=10.0, seed=5)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def backend_params():
    """Parametrisation ids for backend-sensitive suites: numpy always, torch
    marked skip when not importable (skipped, never failed)."""
    from repro.nn.backend import torch_available

    return [
        pytest.param("numpy", id="numpy"),
        pytest.param("torch", id="torch",
                     marks=pytest.mark.skipif(not torch_available(),
                                              reason="torch not installed")),
    ]


@pytest.fixture(params=backend_params())
def nn_backend(request):
    """Activate a compute backend for the duration of one test."""
    from repro.nn.backend import use_backend

    with use_backend(request.param):
        yield request.param
