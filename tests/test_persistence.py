"""Tests for embedding persistence."""

import numpy as np
import pytest

from repro.core import CoANEConfig
from repro.utils.persistence import config_metadata, load_embeddings, save_embeddings


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        Z = np.random.default_rng(0).normal(size=(20, 8))
        path = str(tmp_path / "emb.npz")
        save_embeddings(path, Z, metadata={"dataset": "cora", "seed": 0})
        loaded, metadata = load_embeddings(path)
        np.testing.assert_allclose(loaded, Z)
        assert metadata == {"dataset": "cora", "seed": 0}

    def test_roundtrip_without_metadata(self, tmp_path):
        path = str(tmp_path / "emb.npz")
        save_embeddings(path, np.zeros((3, 2)))
        loaded, metadata = load_embeddings(path)
        assert metadata is None
        assert loaded.shape == (3, 2)

    def test_node_count_guard(self, tmp_path):
        path = str(tmp_path / "emb.npz")
        save_embeddings(path, np.zeros((5, 2)))
        with pytest.raises(ValueError):
            load_embeddings(path, expected_num_nodes=10)
        loaded, _ = load_embeddings(path, expected_num_nodes=5)
        assert loaded.shape == (5, 2)

    def test_rejects_non_matrix(self, tmp_path):
        with pytest.raises(ValueError):
            save_embeddings(str(tmp_path / "bad.npz"), np.zeros(5))

    def test_rejects_foreign_archive(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ValueError):
            load_embeddings(path)


class TestConfigMetadata:
    def test_snapshot_json_safe(self):
        import json

        snapshot = config_metadata(CoANEConfig())
        text = json.dumps(snapshot)  # must not raise
        assert "embedding_dim" in snapshot
        assert snapshot["embedding_dim"] == 128
        assert isinstance(text, str)

    def test_hooks_not_serialised_raw(self):
        config = CoANEConfig()
        config.history_hooks.append(lambda e, z: None)
        snapshot = config_metadata(config)
        assert isinstance(snapshot["history_hooks"], str)
