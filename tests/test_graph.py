"""Unit tests for the attributed-graph container and sparse helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import AttributedGraph, gcn_normalize, row_normalize
from repro.graph.sparse import to_dense


def _triangle():
    adj = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float)
    attrs = np.eye(3)
    return AttributedGraph(adj, attrs, labels=[0, 1, 1], name="tri")


class TestConstruction:
    def test_basic_counts(self):
        g = _triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.num_attributes == 3
        assert g.num_labels == 2

    def test_symmetrises_directed_input(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = 1.0  # one direction only
        g = AttributedGraph(adj, np.eye(3))
        assert g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_removes_self_loops(self):
        adj = np.eye(3)
        g = AttributedGraph(adj, np.eye(3))
        assert g.num_edges == 0

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_rejects_mismatched_attributes(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), np.zeros((2, 2)))

    def test_rejects_negative_weights(self):
        adj = np.zeros((2, 2))
        adj[0, 1] = adj[1, 0] = -1.0
        with pytest.raises(ValueError):
            AttributedGraph(adj, np.zeros((2, 1)))

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            AttributedGraph(np.zeros((3, 3)), np.zeros((3, 1)), labels=[0, 1])


class TestQueries:
    def test_neighbors(self):
        g = _triangle()
        np.testing.assert_array_equal(sorted(g.neighbors(0)), [1, 2])
        np.testing.assert_array_equal(g.neighbors(1), [0])

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            _triangle().neighbors(5)

    def test_degrees(self):
        np.testing.assert_allclose(_triangle().degrees(), [2.0, 1.0, 1.0])

    def test_edge_list_upper_triangular(self):
        edges = _triangle().edge_list()
        assert (edges[:, 0] < edges[:, 1]).all()
        assert len(edges) == 2

    def test_density(self):
        assert _triangle().density == pytest.approx(2 / 3)

    def test_khop(self):
        g = _triangle()
        np.testing.assert_array_equal(g.khop_neighbors(1, 1), [0])
        np.testing.assert_array_equal(g.khop_neighbors(1, 2), [0, 2])

    def test_khop_rejects_zero(self):
        with pytest.raises(ValueError):
            _triangle().khop_neighbors(0, 0)


class TestMutation:
    def test_subgraph_with_edges(self):
        g = _triangle()
        sub = g.subgraph_with_edges(np.array([[0, 1]]))
        assert sub.num_edges == 1
        assert sub.num_nodes == 3  # node set unchanged
        assert not sub.has_edge(0, 2)

    def test_largest_connected_component(self):
        adj = np.zeros((5, 5))
        adj[0, 1] = adj[1, 0] = 1.0
        adj[2, 3] = adj[3, 2] = 1.0
        adj[3, 4] = adj[4, 3] = 1.0
        g = AttributedGraph(adj, np.eye(5), labels=[0, 0, 1, 1, 1])
        lcc = g.largest_connected_component()
        assert lcc.num_nodes == 3
        assert lcc.num_edges == 2
        np.testing.assert_array_equal(lcc.labels, [1, 1, 1])


class TestSparseHelpers:
    def test_row_normalize_rows_sum_to_one(self):
        m = row_normalize(_triangle().adjacency)
        np.testing.assert_allclose(np.asarray(m.sum(axis=1)).ravel(), [1.0, 1.0, 1.0])

    def test_row_normalize_zero_rows_stay_zero(self):
        m = row_normalize(sp.csr_matrix((2, 2)))
        assert m.nnz == 0

    def test_gcn_normalize_symmetric(self):
        m = gcn_normalize(_triangle().adjacency)
        dense = to_dense(m)
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)

    def test_gcn_normalize_known_value(self):
        # Two connected nodes with self loops: each degree 2, off-diagonal 1/2.
        adj = sp.csr_matrix(np.array([[0, 1.0], [1.0, 0]]))
        dense = to_dense(gcn_normalize(adj))
        np.testing.assert_allclose(dense, [[0.5, 0.5], [0.5, 0.5]])

    def test_to_dense_passthrough(self):
        arr = np.ones((2, 2))
        np.testing.assert_array_equal(to_dense(arr), arr)
