"""EmbeddingServer: routes, coalescing determinism, shedding, hot reload."""

import asyncio

import numpy as np
import pytest

from repro.core import CoANE, CoANEConfig
from repro.serve import Checkpoint, EmbeddingService
from repro.serve.http import EmbeddingServer, ServerConfig, ServerThread, ShedPolicy
from repro.serve.http.loadgen import run_open_loop, summarize
from repro.serve.http.protocol import (
    json_payload,
    read_response,
    render_request,
)

MAX_BATCH = 8
MAX_QUEUE = 64


@pytest.fixture(scope="module")
def checkpoint(small_graph):
    estimator = CoANE(CoANEConfig(embedding_dim=16, epochs=10, seed=0))
    estimator.fit(small_graph)
    return Checkpoint.from_estimator(estimator, small_graph)


@pytest.fixture(scope="module")
def checkpoint_path(checkpoint, tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "model.ckpt.npz"
    checkpoint.save(str(path))
    return str(path)


@pytest.fixture(scope="module")
def server(checkpoint_path, small_graph):
    # cache_size=0: every query hits the search path, so determinism
    # comparisons never see a cached-vs-fresh asymmetry.
    config = ServerConfig(port=0, cache_size=0, max_batch=MAX_BATCH,
                          max_queue=MAX_QUEUE, default_topk=10, seed=0)
    instance = EmbeddingServer(checkpoint_path, graph=small_graph,
                               config=config)
    with ServerThread(instance):
        yield instance


async def _call_async(port, method, path, obj=None, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        merged = {"Connection": "close"}
        merged.update(headers or {})
        body = json_payload(obj) if obj is not None else b""
        writer.write(render_request(method, path, body, headers=merged))
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


def call(server, method, path, obj=None, headers=None):
    return asyncio.run(_call_async(server.port, method, path, obj=obj,
                                   headers=headers))


class TestRoutes:
    def test_healthz(self, server):
        response = call(server, "GET", "/healthz")
        body = response.json()
        assert response.status == 200
        assert body["status"] == "ok"
        assert body["num_vectors"] >= 120
        assert body["generation"] >= 1

    def test_query_matches_direct_service(self, server, checkpoint):
        response = call(server, "POST", "/v1/query", {"node": 3, "topk": 5})
        assert response.status == 200
        result = response.json()["results"][0]
        direct = EmbeddingService(checkpoint, metric="cosine", cache_size=0,
                                  verify=False, seed=0).query(3, topk=5)
        assert result["neighbor_ids"] == [int(i) for i in direct.neighbor_ids]
        # JSON float round-trips are exact (repr), so so is this comparison.
        assert result["scores"] == [float(s) for s in direct.scores]

    def test_query_many_preserves_order(self, server):
        nodes = [9, 1, 5, 1]
        response = call(server, "POST", "/v1/query",
                        {"nodes": nodes, "topk": 3})
        assert response.status == 200
        body = response.json()
        assert [entry["node"] for entry in body["results"]] == nodes
        assert body["topk"] == 3

    def test_query_uses_default_topk(self, server):
        response = call(server, "POST", "/v1/query", {"node": 0})
        assert len(response.json()["results"][0]["neighbor_ids"]) == 10

    def test_unknown_route_is_404(self, server):
        assert call(server, "GET", "/nope").status == 404

    def test_wrong_method_is_405_with_allow(self, server):
        response = call(server, "GET", "/v1/query")
        assert response.status == 405
        assert response.headers["allow"] == "POST"

    @pytest.mark.parametrize("payload", [
        {},                              # neither node nor nodes
        {"node": 1, "nodes": [2]},       # both
        {"node": None},                  # JSON null
        {"node": "3"},                   # wrong type
        {"node": True},                  # bool is not an int here
        {"nodes": []},                   # empty batch
        {"nodes": [1, "2"]},             # mixed types
        {"node": 1, "topk": -1},         # negative topk
        {"node": 1, "topk": "5"},        # non-integer topk
    ])
    def test_invalid_query_payloads_are_400(self, server, payload):
        response = call(server, "POST", "/v1/query", payload)
        assert response.status == 400, response.json()

    def test_out_of_range_node_is_400_not_500(self, server):
        response = call(server, "POST", "/v1/query", {"node": 10 ** 6})
        assert response.status == 400
        assert "out of range" in response.json()["error"]

    def test_undecodable_body_is_400(self, server):
        async def go():
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            try:
                writer.write(render_request(
                    "POST", "/v1/query", b"{not json",
                    headers={"Connection": "close"}))
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()

        assert asyncio.run(go()).status == 400

    def test_keep_alive_serves_sequential_requests(self, server):
        async def go():
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            try:
                statuses = []
                for node in (1, 2):
                    writer.write(render_request(
                        "POST", "/v1/query",
                        json_payload({"node": node, "topk": 2})))
                    await writer.drain()
                    statuses.append((await read_response(reader)).status)
                return statuses
            finally:
                writer.close()

        assert asyncio.run(go()) == [200, 200]


class TestMetricsEndpoint:
    def test_prometheus_series_present(self, server):
        call(server, "POST", "/v1/query", {"node": 2})
        response = call(server, "GET", "/metrics")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        text = response.body.decode()
        assert "http_queue_depth" in text
        assert "http_sheds_total" in text
        assert "http_request_seconds_bucket" in text
        assert "service_queries_total" in text

    def test_scrape_has_no_nan(self, server):
        # An idle-ish server must never export NaN from a zero-denominator
        # ratio — the scrape would silently poison every derived panel.
        text = call(server, "GET", "/metrics").body.decode().lower()
        assert "nan" not in text

    def test_idle_service_stats_ratios_are_zero(self, checkpoint):
        stats = EmbeddingService(checkpoint, verify=False).stats()
        assert stats["deadline_miss_ratio"] == 0.0
        assert stats["degraded_ratio"] == 0.0


class TestCoalescingDeterminism:
    def test_concurrent_equals_serial_byte_for_byte(self, server, checkpoint):
        nodes = list(range(24))

        async def concurrent():
            return await asyncio.gather(*[
                _call_async(server.port, "POST", "/v1/query",
                            {"node": node, "topk": 6})
                for node in nodes])

        responses = asyncio.run(concurrent())
        service = EmbeddingService(checkpoint, metric="cosine", cache_size=0,
                                   verify=False, seed=0)
        for node, response in zip(nodes, responses):
            assert response.status == 200
            result = response.json()["results"][0]
            serial = service.query(node, topk=6)
            assert result["neighbor_ids"] == [int(i)
                                              for i in serial.neighbor_ids]
            assert result["scores"] == [float(s) for s in serial.scores]

    def test_coalesced_batches_respect_max_batch(self, server):
        response = call(server, "POST", "/v1/query",
                        {"nodes": list(range(3 * MAX_BATCH - 4), ), "topk": 2})
        assert response.status == 200
        sizes = server.registry.histogram("http_batch_size")
        assert sizes.max <= MAX_BATCH
        assert sizes.count >= 3


class TestShedding:
    def test_policy_queue_full(self):
        policy = ShedPolicy(max_queue=4)
        assert policy.admit(depth=0, incoming=4) is None
        assert policy.admit(depth=3, incoming=2) == "queue_full"

    def test_policy_pressure_needs_min_observations(self):
        policy = ShedPolicy(max_queue=100, shed_degraded_ratio=0.5,
                            min_observations=10)
        policy.record_answers(5, 5)          # 100% degraded, window too small
        assert policy.admit(depth=0) is None
        policy.record_answers(5, 5)
        assert policy.admit(depth=0) == "deadline_pressure"

    def test_policy_sheds_dilute_and_reopen(self):
        policy = ShedPolicy(max_queue=100, shed_degraded_ratio=0.5,
                            pressure_window=64, min_observations=8)
        policy.record_answers(8, 8)
        assert policy.admit(depth=0) == "deadline_pressure"
        # Each shed enters the window as an on-time entry; enough of them
        # pull the ratio back under the threshold — admission re-opens
        # without any clock involved.
        for _ in range(8):
            policy.record_shed()
        assert policy.degraded_ratio == 0.5
        assert policy.admit(depth=0) is None

    def test_policy_window_slides(self):
        policy = ShedPolicy(max_queue=100, shed_degraded_ratio=0.5,
                            pressure_window=10, min_observations=4)
        policy.record_answers(10, 10)
        policy.record_answers(10, 0)         # evicts the degraded batch
        assert policy.degraded_ratio == 0.0

    def test_policy_none_ratio_disables_pressure(self):
        policy = ShedPolicy(max_queue=100, shed_degraded_ratio=None,
                            min_observations=1)
        policy.record_answers(10, 10)
        assert policy.admit(depth=0) is None

    def test_oversized_batch_sheds_with_retry_after(self, server):
        # All-or-nothing admission: a batch larger than the whole queue can
        # never be half-admitted, so it sheds deterministically.
        before = server.registry.counter("http_sheds_total",
                                         reason="queue_full").value
        response = call(server, "POST", "/v1/query",
                        {"nodes": list(range(MAX_QUEUE + 1))})
        assert response.status == 503
        body = response.json()
        assert body["error"] == "overloaded"
        assert body["reason"] == "queue_full"
        assert int(response.headers["retry-after"]) >= 1
        after = server.registry.counter("http_sheds_total",
                                        reason="queue_full").value
        assert after - before == MAX_QUEUE + 1


class TestHotReload:
    def test_reload_under_load_drops_nothing(self, server, checkpoint_path):
        generation = server.snapshot.generation

        async def reload():
            response = await _call_async(server.port, "POST", "/admin/reload",
                                         {"checkpoint": checkpoint_path})
            return response.status

        async def burst():
            offsets = np.linspace(0.0, 0.4, 60)
            nodes = np.arange(60) % 100
            return await run_open_loop("127.0.0.1", server.port, offsets,
                                       nodes, topk=4,
                                       actions=[(0.2, reload)])

        records = asyncio.run(burst())
        report = summarize(records)
        assert report["requests"] == 60
        assert report["ok"] == 60           # zero drops, zero non-200s
        assert report["errors"] == 0
        assert [r["result"] for r in records
                if r.get("outcome") == "action"] == [200]
        assert server.snapshot.generation == generation + 1

    def test_reload_missing_file_is_404_and_keeps_serving(self, server):
        generation = server.snapshot.generation
        response = call(server, "POST", "/admin/reload",
                        {"checkpoint": "/nonexistent/model.ckpt.npz"})
        assert response.status == 404
        assert server.snapshot.generation == generation
        assert call(server, "POST", "/v1/query", {"node": 1}).status == 200

    def test_reload_corrupt_archive_is_409_and_keeps_serving(
            self, server, tmp_path):
        bad = tmp_path / "corrupt.ckpt.npz"
        bad.write_bytes(b"this is not an npz archive")
        generation = server.snapshot.generation
        response = call(server, "POST", "/admin/reload",
                        {"checkpoint": str(bad)})
        assert response.status == 409
        assert f"still serving generation {generation}" \
            in response.json()["error"]
        assert server.snapshot.generation == generation

    def test_reload_fingerprint_mismatch_is_409(self, server, tiny_graph,
                                                tmp_path):
        # The server was started with graph=small_graph and verify=True: a
        # checkpoint trained on a different graph must be refused.
        estimator = CoANE(CoANEConfig(embedding_dim=16, epochs=2, seed=1))
        estimator.fit(tiny_graph)
        other = tmp_path / "other.ckpt.npz"
        Checkpoint.from_estimator(estimator, tiny_graph).save(str(other))
        generation = server.snapshot.generation
        response = call(server, "POST", "/admin/reload",
                        {"checkpoint": str(other)})
        assert response.status == 409
        assert server.snapshot.generation == generation

    def test_reload_success_reports_generations(self, server,
                                                checkpoint_path):
        generation = server.snapshot.generation
        response = call(server, "POST", "/admin/reload",
                        {"checkpoint": checkpoint_path})
        body = response.json()
        assert response.status == 200
        assert body["previous_generation"] == generation
        assert body["generation"] == generation + 1
        assert body["reload_seconds"] > 0


class TestGraphEndpoints:
    def test_score_pairs(self, server):
        response = call(server, "POST", "/v1/score",
                        {"pairs": [[0, 1], [2, 3]]})
        body = response.json()
        assert response.status == 200
        assert len(body["scores"]) == 2
        assert all(0.0 <= s <= 1.0 for s in body["scores"])

    def test_classify_nodes(self, server):
        response = call(server, "POST", "/v1/score", {"nodes": [0, 1, 2]})
        assert response.status == 200
        assert len(response.json()["labels"]) == 3

    def test_embed_adds_queryable_vector(self, server, small_graph):
        before = call(server, "GET", "/healthz").json()["num_vectors"]
        attributes = [[1.0] * small_graph.attributes.shape[1]]
        response = call(server, "POST", "/v1/embed",
                        {"attributes": attributes,
                         "edges": [[before, 0], [before, 1]]})
        body = response.json()
        assert response.status == 200
        assert body["ids"] == [before]
        assert body["num_vectors"] == before + 1
        follow_up = call(server, "POST", "/v1/query", {"node": before})
        assert follow_up.status == 200

    def test_score_without_graph_is_409(self, checkpoint_path):
        config = ServerConfig(port=0, verify=False)
        instance = EmbeddingServer(checkpoint_path, config=config)
        with ServerThread(instance):
            response = call(instance, "POST", "/v1/score",
                            {"pairs": [[0, 1]]})
            assert response.status == 409
            assert call(instance, "POST", "/v1/query",
                        {"node": 0}).status == 200
