"""End-to-end tests of the CoANE estimator."""

import numpy as np
import pytest

from repro.core import CoANE, CoANEConfig


def _fast_config(**overrides):
    base = dict(embedding_dim=16, epochs=5, walk_length=20, num_walks=1,
                decoder_hidden=16, seed=0)
    base.update(overrides)
    return CoANEConfig(**base)


class TestFit:
    def test_embedding_shape(self, small_graph):
        Z = CoANE(_fast_config()).fit_transform(small_graph)
        assert Z.shape == (small_graph.num_nodes, 16)
        assert np.isfinite(Z).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CoANE(_fast_config()).transform()

    def test_history_recorded(self, small_graph):
        model = CoANE(_fast_config(epochs=4)).fit(small_graph)
        assert len(model.history_) == 4
        assert {"loss", "positive", "negative", "attribute", "epoch"} <= set(model.history_[0])

    def test_loss_decreases(self, small_graph):
        model = CoANE(_fast_config(epochs=15)).fit(small_graph)
        first = np.mean([h["loss"] for h in model.history_[:3]])
        last = np.mean([h["loss"] for h in model.history_[-3:]])
        assert last < first

    def test_seeded_determinism(self, small_graph):
        a = CoANE(_fast_config()).fit_transform(small_graph)
        b = CoANE(_fast_config()).fit_transform(small_graph)
        np.testing.assert_array_equal(a, b)

    def test_embeddings_separate_classes(self, small_graph):
        Z = CoANE(_fast_config(epochs=20)).fit_transform(small_graph)
        norms = np.linalg.norm(Z, axis=1, keepdims=True)
        cosine = (Z / np.maximum(norms, 1e-12)) @ (Z / np.maximum(norms, 1e-12)).T
        same = small_graph.labels[:, None] == small_graph.labels[None, :]
        np.fill_diagonal(same, False)
        off = ~same & ~np.eye(len(Z), dtype=bool)
        assert cosine[same].mean() > cosine[off].mean() + 0.05

    def test_overrides_via_kwargs(self, tiny_graph):
        model = CoANE(embedding_dim=8, epochs=2, walk_length=10, decoder_hidden=8, seed=1)
        Z = model.fit_transform(tiny_graph)
        assert Z.shape == (tiny_graph.num_nodes, 8)

    def test_inspection_attributes(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2)).fit(tiny_graph)
        assert model.model_ is not None
        assert model.context_set_.num_nodes == tiny_graph.num_nodes
        assert model.cooccurrence_.kp >= 1


class TestAblationSwitches:
    def test_positive_off(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, positive_mode="off")).fit(tiny_graph)
        assert all(h["positive"] == 0.0 for h in model.history_)

    def test_skipgram_positive(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, positive_mode="skipgram")).fit(tiny_graph)
        assert model.history_[0]["positive"] > 0.0

    def test_negative_off(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, negative_mode="off")).fit(tiny_graph)
        assert all(h["negative"] == 0.0 for h in model.history_)

    def test_uniform_negative(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, negative_mode="uniform",
                                   negative_strength=0.1)).fit(tiny_graph)
        assert any(h["negative"] > 0.0 for h in model.history_)

    def test_without_attribute_input(self, tiny_graph):
        # WF ablation: identity attributes instead of X.
        Z = CoANE(_fast_config(epochs=2, use_attribute_input=False)).fit_transform(tiny_graph)
        assert Z.shape == (tiny_graph.num_nodes, 16)

    def test_without_attribute_preservation(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, gamma=0.0)).fit(tiny_graph)
        assert all(h["attribute"] == 0.0 for h in model.history_)

    def test_fc_extractor(self, tiny_graph):
        Z = CoANE(_fast_config(epochs=2, extractor="fc")).fit_transform(tiny_graph)
        assert Z.shape == (tiny_graph.num_nodes, 16)

    def test_onehop_contexts(self, tiny_graph):
        model = CoANE(_fast_config(epochs=2, context_source="onehop")).fit(tiny_graph)
        # Every node must have at least one context in one-hop mode.
        assert (model.context_set_.counts() >= 1).all()


class TestBatchTraining:
    def test_mini_batch_runs_and_matches_shape(self, small_graph):
        Z = CoANE(_fast_config(epochs=3, batch_size=32)).fit_transform(small_graph)
        assert Z.shape == (small_graph.num_nodes, 16)
        assert np.isfinite(Z).all()

    def test_mini_batch_learns(self, small_graph):
        model = CoANE(_fast_config(epochs=10, batch_size=48)).fit(small_graph)
        Z = model.transform()
        norms = np.linalg.norm(Z, axis=1, keepdims=True)
        cosine = (Z / np.maximum(norms, 1e-12)) @ (Z / np.maximum(norms, 1e-12)).T
        same = small_graph.labels[:, None] == small_graph.labels[None, :]
        np.fill_diagonal(same, False)
        off = ~same & ~np.eye(len(Z), dtype=bool)
        assert cosine[same].mean() > cosine[off].mean()


class TestHooks:
    def test_history_hooks_called_each_epoch(self, tiny_graph):
        snapshots = []
        cfg = _fast_config(epochs=3)
        cfg.history_hooks.append(lambda epoch, Z: snapshots.append((epoch, Z.shape)))
        CoANE(cfg).fit(tiny_graph)
        assert [s[0] for s in snapshots] == [0, 1, 2]
        assert all(shape == (tiny_graph.num_nodes, 16) for _, shape in snapshots)
