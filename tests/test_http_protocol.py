"""The HTTP/1.1 wire layer: bounded parsing, framing, and JSON bodies."""

import asyncio

import pytest

from repro.serve.http.protocol import (
    MAX_HEADERS,
    ProtocolError,
    Request,
    json_payload,
    read_request,
    read_response,
    render_request,
    render_response,
)


def parse_request(data: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def parse_response(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_response(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query_string(self):
        request = parse_request(
            b"GET /healthz?verbose=1&name=a%20b HTTP/1.1\r\n"
            b"Host: example\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {"verbose": "1", "name": "a b"}
        assert request.body == b""

    def test_post_with_body_and_lowercased_headers(self):
        body = json_payload({"node": 3})
        request = parse_request(
            b"POST /v1/query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body)
        assert request.method == "POST"
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"node": 3}

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_keep_alive_default_and_close(self):
        assert parse_request(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        closed = parse_request(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not closed.keep_alive

    @pytest.mark.parametrize("line", [
        b"NOT_A_REQUEST\r\n\r\n",
        b"GET /\r\n\r\n",                        # missing version
        b"GET / SPDY/3\r\n\r\n",                 # wrong protocol
        b"GET / HTTP/1.1 extra\r\n\r\n",         # too many parts
    ])
    def test_malformed_request_line_is_400(self, line):
        with pytest.raises(ProtocolError) as info:
            parse_request(line)
        assert info.value.status == 400

    def test_chunked_bodies_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"POST / HTTP/1.1\r\n"
                          b"Transfer-Encoding: chunked\r\n\r\n")
        assert info.value.status == 400

    @pytest.mark.parametrize("declared", [b"abc", b"-5"])
    def test_bad_content_length_is_400(self, declared):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: "
                          + declared + b"\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_body_is_413_before_reading_it(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n"
                          + b"x" * 64, max_body=16)
        assert info.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert info.value.status == 400

    def test_header_flood_is_431(self):
        flood = b"".join(b"X-H%d: v\r\n" % i for i in range(MAX_HEADERS + 1))
        with pytest.raises(ProtocolError) as info:
            parse_request(b"GET / HTTP/1.1\r\n" + flood + b"\r\n")
        assert info.value.status == 431

    def test_malformed_header_line_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert info.value.status == 400


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert Request("POST", "/", {}, {}, b"").json() == {}

    def test_invalid_json_is_400(self):
        with pytest.raises(ProtocolError) as info:
            Request("POST", "/", {}, {}, b"{nope").json()
        assert info.value.status == 400

    def test_non_object_json_is_400(self):
        with pytest.raises(ProtocolError) as info:
            Request("POST", "/", {}, {}, b"[1,2]").json()
        assert info.value.status == 400


class TestRendering:
    def test_response_roundtrip(self):
        body = json_payload({"status": "ok"})
        wire = render_response(200, body, headers={"Retry-After": "2"})
        response = parse_response(wire)
        assert response.status == 200
        assert response.headers["retry-after"] == "2"
        assert response.headers["content-length"] == str(len(body))
        assert response.json() == {"status": "ok"}

    def test_response_connection_header_tracks_keep_alive(self):
        assert b"Connection: keep-alive" in render_response(200, b"{}")
        assert b"Connection: close" in render_response(
            200, b"{}", keep_alive=False)

    def test_response_reason_phrases(self):
        assert render_response(503, b"").startswith(
            b"HTTP/1.1 503 Service Unavailable\r\n")
        assert render_response(418, b"").startswith(b"HTTP/1.1 418 Unknown")

    def test_request_roundtrip(self):
        body = json_payload({"node": 1})
        request = parse_request(render_request("post", "/v1/query", body))
        assert request.method == "POST"
        assert request.path == "/v1/query"
        assert request.headers["host"] == "localhost"
        assert request.json() == {"node": 1}

    def test_content_length_frames_consecutive_messages(self):
        # Two pipelined requests on one stream parse independently — the
        # framing contract keep-alive connections rely on.
        first = render_request("POST", "/a", json_payload({"i": 1}))
        second = render_request("POST", "/b", json_payload({"i": 2}))

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(first + second)
            reader.feed_eof()
            return await read_request(reader), await read_request(reader)

        one, two = asyncio.run(go())
        assert (one.path, one.json()) == ("/a", {"i": 1})
        assert (two.path, two.json()) == ("/b", {"i": 2})
